#include "sim/shard.hpp"

#include <limits>
#include <sstream>

#include "common/contracts.hpp"
#include "common/json_min.hpp"
#include "sim/scenario_io.hpp"

#ifndef FTMAO_GIT_REV
#define FTMAO_GIT_REV "unknown"
#endif

namespace ftmao {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_mix_u64(std::uint64_t& h, std::uint64_t v) {
  // Little-endian byte order by construction (not by host endianness), so
  // the assignment is identical across machines.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
}

void fnv_mix_str(std::uint64_t& h, const std::string& s) {
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
}

std::string format_double(double v) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::istringstream is(text);
  std::string token;
  while (std::getline(is, token, sep)) out.push_back(token);
  return out;
}

}  // namespace

std::size_t shard_of_cell(const CellSpec& cell, std::size_t shard_count) {
  FTMAO_EXPECTS(shard_count >= 1);
  std::uint64_t h = kFnvOffset;
  fnv_mix_u64(h, static_cast<std::uint64_t>(cell.n));
  fnv_mix_u64(h, static_cast<std::uint64_t>(cell.f));
  // Scalar cells (dim 1, the historical grid) keep their pre-dim-axis
  // assignment: only vector cells mix the dimension in.
  if (cell.dim != 1) fnv_mix_u64(h, static_cast<std::uint64_t>(cell.dim));
  fnv_mix_str(h, attack_kind_name(cell.attack));
  // FNV-1a avalanches poorly on short inputs (adjacent cells land in the
  // same residue class for small moduli), so finalize with the splitmix64
  // mixer before reducing — grids of a few cells then spread across
  // shards instead of clumping.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return static_cast<std::size_t>(h % shard_count);
}

std::vector<CellSpec> shard_cell_specs(const SweepConfig& config,
                                       std::size_t shard_index,
                                       std::size_t shard_count) {
  FTMAO_EXPECTS(shard_index < shard_count);
  std::vector<CellSpec> mine;
  for (const CellSpec& cell : sweep_cell_specs(config))
    if (shard_of_cell(cell, shard_count) == shard_index) mine.push_back(cell);
  return mine;
}

std::vector<SweepCell> run_sweep_shard(const SweepConfig& config,
                                       std::size_t shard_index,
                                       std::size_t shard_count) {
  return run_sweep_cells(config,
                         shard_cell_specs(config, shard_index, shard_count));
}

std::string cell_key(const CellSpec& cell) {
  std::ostringstream os;
  os << cell.n << ':' << cell.f << ':' << cell.dim << ':'
     << attack_kind_name(cell.attack);
  return os.str();
}

std::string format_sizes(
    const std::vector<std::pair<std::size_t, std::size_t>>& sizes) {
  std::ostringstream os;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (i) os << ',';
    os << sizes[i].first << ':' << sizes[i].second;
  }
  return os.str();
}

std::vector<std::pair<std::size_t, std::size_t>> parse_sizes(
    const std::string& text) {
  std::vector<std::pair<std::size_t, std::size_t>> sizes;
  for (const std::string& pair : split(text, ',')) {
    const auto colon = pair.find(':');
    if (colon == std::string::npos)
      throw ContractViolation("sizes spec expects n:f pairs, got '" + pair +
                              "'");
    sizes.emplace_back(std::stoul(pair.substr(0, colon)),
                       std::stoul(pair.substr(colon + 1)));
  }
  return sizes;
}

std::string format_attacks(const std::vector<AttackKind>& attacks) {
  std::ostringstream os;
  for (std::size_t i = 0; i < attacks.size(); ++i) {
    if (i) os << ',';
    os << attack_kind_name(attacks[i]);
  }
  return os.str();
}

std::vector<AttackKind> parse_attacks(const std::string& text) {
  std::vector<AttackKind> attacks;
  for (const std::string& name : split(text, ','))
    attacks.push_back(parse_attack_kind(name));
  return attacks;
}

std::string format_dims(const std::vector<std::size_t>& dims) {
  std::ostringstream os;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (i) os << ',';
    os << dims[i];
  }
  return os.str();
}

std::vector<std::size_t> parse_dims(const std::string& text) {
  std::vector<std::size_t> dims;
  for (const std::string& token : split(text, ','))
    dims.push_back(std::stoul(token));
  return dims;
}

std::string format_seeds(const std::vector<std::uint64_t>& seeds) {
  std::ostringstream os;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    if (i) os << ',';
    os << seeds[i];
  }
  return os.str();
}

std::vector<std::uint64_t> parse_seeds(const std::string& text) {
  std::vector<std::uint64_t> seeds;
  for (const std::string& token : split(text, ','))
    seeds.push_back(std::stoull(token));
  return seeds;
}

std::string format_step(const StepConfig& step) {
  std::ostringstream os;
  os << step_kind_name(step.kind) << ':' << format_double(step.scale) << ':'
     << format_double(step.exponent);
  return os.str();
}

StepConfig parse_step(const std::string& text) {
  const std::vector<std::string> parts = split(text, ':');
  if (parts.size() != 3)
    throw ContractViolation("step spec expects kind:scale:exponent, got '" +
                            text + "'");
  StepConfig step;
  step.kind = parse_step_kind(parts[0]);
  step.scale = std::stod(parts[1]);
  step.exponent = std::stod(parts[2]);
  return step;
}

ShardManifest make_shard_manifest(const SweepConfig& config,
                                  std::size_t shard_index,
                                  std::size_t shard_count) {
  ShardManifest m;
  m.shard_index = shard_index;
  m.shard_count = shard_count;
  m.sizes = format_sizes(config.sizes);
  m.dims = format_dims(config.dims);
  m.attacks = format_attacks(config.attacks);
  m.seeds = format_seeds(config.seeds);
  m.rounds = config.rounds;
  m.spread = config.spread;
  m.step = format_step(config.step);
  for (const CellSpec& cell :
       shard_cell_specs(config, shard_index, shard_count))
    m.cells.push_back(cell_key(cell));
  m.git_rev = build_git_revision();
  return m;
}

SweepConfig config_from_manifest(const ShardManifest& manifest) {
  SweepConfig config;
  config.sizes = parse_sizes(manifest.sizes);
  config.dims = parse_dims(manifest.dims);
  config.attacks = parse_attacks(manifest.attacks);
  config.seeds = parse_seeds(manifest.seeds);
  config.rounds = manifest.rounds;
  config.spread = manifest.spread;
  config.step = parse_step(manifest.step);
  return config;
}

std::string manifest_to_json(const ShardManifest& m) {
  std::ostringstream os;
  os << "{\n"
     << "  \"schema\": " << m.schema << ",\n"
     << "  \"shard_index\": " << m.shard_index << ",\n"
     << "  \"shard_count\": " << m.shard_count << ",\n"
     << "  \"grid\": {\n"
     << "    \"sizes\": \"" << m.sizes << "\",\n"
     << "    \"dims\": \"" << m.dims << "\",\n"
     << "    \"attacks\": \"" << m.attacks << "\",\n"
     << "    \"seeds\": \"" << m.seeds << "\",\n"
     << "    \"rounds\": " << m.rounds << ",\n"
     << "    \"spread\": " << format_double(m.spread) << ",\n"
     << "    \"step\": \"" << m.step << "\"\n"
     << "  },\n"
     << "  \"cells\": [";
  for (std::size_t i = 0; i < m.cells.size(); ++i) {
    if (i) os << ", ";
    os << '"' << m.cells[i] << '"';
  }
  os << "],\n"
     << "  \"git_rev\": \"" << m.git_rev << "\",\n"
     << "  \"isa\": \"" << m.isa << "\",\n"
     << "  \"wall_ms\": " << format_double(m.wall_ms) << ",\n"
     << "  \"exit_status\": " << m.exit_status << "\n"
     << "}\n";
  return os.str();
}

ShardManifest manifest_from_json(const std::string& json) {
  using jsonmin::number_field;
  using jsonmin::string_array_field;
  using jsonmin::string_field;
  ShardManifest m;
  m.schema = static_cast<int>(number_field(json, "schema"));
  if (m.schema != 1)
    throw ContractViolation("manifest JSON: unsupported schema " +
                            std::to_string(m.schema));
  m.shard_index = static_cast<std::size_t>(number_field(json, "shard_index"));
  m.shard_count = static_cast<std::size_t>(number_field(json, "shard_count"));
  m.sizes = string_field(json, "sizes");
  m.dims = string_field(json, "dims");
  m.attacks = string_field(json, "attacks");
  m.seeds = string_field(json, "seeds");
  m.rounds = static_cast<std::size_t>(number_field(json, "rounds"));
  m.spread = number_field(json, "spread");
  m.step = string_field(json, "step");
  m.cells = string_array_field(json, "cells");
  m.git_rev = string_field(json, "git_rev");
  m.isa = string_field(json, "isa");
  m.wall_ms = number_field(json, "wall_ms");
  m.exit_status = static_cast<int>(number_field(json, "exit_status"));
  if (m.shard_index >= m.shard_count)
    throw ContractViolation("manifest JSON: shard_index >= shard_count");
  return m;
}

std::string build_git_revision() { return FTMAO_GIT_REV; }

}  // namespace ftmao
