#pragma once

// Reporting helpers shared by the experiment binaries: log-spaced
// iteration grids and aligned series tables. Library code (tested), used
// by bench/ via bench_util.hpp.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/series.hpp"

namespace ftmao {

/// Standard experiment banner.
void print_experiment_header(std::ostream& os, const std::string& id,
                             const std::string& claim);

/// Roughly log-spaced iteration indices in [1, t_max], strictly
/// increasing, always ending with t_max. `per_decade` >= 1 controls the
/// density.
std::vector<std::size_t> log_spaced(std::size_t t_max,
                                    std::size_t per_decade = 4);

/// Prints a "t | series..." table sampled at log-spaced rounds. Series
/// shorter than t_max are padded with their final value.
void print_series_table(std::ostream& os,
                        const std::vector<std::string>& series_names,
                        const std::vector<const Series*>& series,
                        std::size_t t_max);

}  // namespace ftmao
