#pragma once

// Message delay models for the asynchronous engine (Section 7). Delays
// are strictly positive and finite (the async model guarantees eventual
// delivery but no bound known to the algorithm).

#include <memory>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace ftmao {

/// Produces the in-flight time of a message sent at `send_time`.
class DelayModel {
 public:
  virtual ~DelayModel() = default;
  virtual double delay(AgentId from, AgentId to, double send_time) = 0;
};

/// Constant delay (degenerates to lock-step behaviour).
class FixedDelay final : public DelayModel {
 public:
  explicit FixedDelay(double d);
  double delay(AgentId from, AgentId to, double send_time) override;

 private:
  double delay_;
};

/// Uniform random delay in [lo, hi], seeded and deterministic.
class UniformDelay final : public DelayModel {
 public:
  UniformDelay(double lo, double hi, Rng rng);
  double delay(AgentId from, AgentId to, double send_time) override;

 private:
  double lo_;
  double hi_;
  Rng rng_;
};

/// Adversarial skew: messages from a chosen set of "slow" senders take
/// slow_delay, everything else fast_delay. Stresses the async algorithm's
/// tolerance to consistently stale agents.
class TargetedSlowdown final : public DelayModel {
 public:
  TargetedSlowdown(std::vector<AgentId> slow_senders, double fast_delay,
                   double slow_delay);
  double delay(AgentId from, AgentId to, double send_time) override;

 private:
  std::vector<AgentId> slow_;
  double fast_;
  double slow_delay_;
};

}  // namespace ftmao
