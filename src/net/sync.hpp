#pragma once

// Synchronous round-based message-passing engine over a complete network
// (the paper's system model, Section 2).
//
// Honest nodes broadcast one payload per round (Step 1 of SBG) and then
// consume their inbox (Steps 2-3). Byzantine nodes choose a payload *per
// recipient* and may observe all honest payloads of the round first — the
// strongest ("rushing", duplicitous) adversary the paper allows. Omission
// behaviour (crash model, Section 7) is modelled by strategies returning
// no payload and by crash schedules in sim/.
//
// The engine delivers exactly what was sent; substituting default values
// for missing tuples (paper Step 2) is the *node's* decision, because the
// crash-model variant instead averages only what arrived.

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "common/contracts.hpp"
#include "common/types.hpp"

namespace ftmao {

/// One delivered message as seen by a recipient.
template <typename P>
struct Received {
  AgentId from;
  P payload;
};

/// What a Byzantine strategy may observe when choosing its payloads for a
/// round: every honest agent's broadcast of that round (rushing adversary).
template <typename P>
struct RoundView {
  Round round;
  std::span<const Received<P>> honest_broadcasts;
};

/// Interface for a correct (protocol-following) node.
template <typename P>
class SyncNode {
 public:
  virtual ~SyncNode() = default;

  /// Step 1: the payload this node sends to every other agent this round.
  virtual P broadcast(Round t) = 0;

  /// Steps 2-3: consume the inbox (own broadcast is NOT included; nodes
  /// that need it add their own value) and update local state.
  virtual void step(Round t, std::span<const Received<P>> inbox) = 0;
};

/// Interface for a Byzantine node: chooses what each recipient sees.
/// Returning nullopt models an omission (recipient gets nothing).
template <typename P>
class ByzantineNode {
 public:
  virtual ~ByzantineNode() = default;

  virtual std::optional<P> send_to(AgentId self, AgentId recipient,
                                   const RoundView<P>& view) = 0;
};

/// Decides whether a message from `from` reaches `to` in round `t`.
/// Models incomplete topologies (graph/) and omission faults.
using DeliveryFilter = std::function<bool(AgentId from, AgentId to, Round t)>;

/// Drives rounds over a fixed population of honest and Byzantine nodes.
/// Non-owning: nodes outlive the engine (sim/ owns both).
template <typename P>
class SyncEngine {
 public:
  /// Restricts deliveries; by default everything is delivered (complete
  /// network). Applies to honest and Byzantine senders alike — even a
  /// Byzantine agent cannot talk over links that do not exist.
  void set_delivery_filter(DeliveryFilter filter) {
    filter_ = std::move(filter);
  }

  void add_honest(AgentId id, SyncNode<P>* node) {
    FTMAO_EXPECTS(node != nullptr);
    FTMAO_EXPECTS(!has_agent(id));
    honest_.push_back({id, node});
  }

  void add_byzantine(AgentId id, ByzantineNode<P>* node) {
    FTMAO_EXPECTS(node != nullptr);
    FTMAO_EXPECTS(!has_agent(id));
    byzantine_.push_back({id, node});
  }

  std::size_t num_agents() const { return honest_.size() + byzantine_.size(); }

  /// Total messages delivered to honest agents so far (dropped/filtered
  /// messages are not counted).
  std::uint64_t messages_delivered() const { return messages_delivered_; }

  /// Executes one synchronous iteration: collect honest broadcasts, let
  /// Byzantine nodes react, deliver, and step every honest node.
  /// The broadcast and inbox buffers are engine members reused across
  /// rounds, so a multi-thousand-round run allocates only during the first
  /// round (the dominant cost of small-n rounds was this churn).
  void run_round(Round t) {
    // Step 1: honest broadcasts (one payload for all recipients).
    broadcast_scratch_.clear();
    broadcast_scratch_.reserve(honest_.size());
    for (auto& [id, node] : honest_)
      broadcast_scratch_.push_back({id, node->broadcast(t)});

    const RoundView<P> view{t, broadcast_scratch_};

    // Step 2: build each honest recipient's inbox.
    for (auto& [rid, rnode] : honest_) {
      inbox_scratch_.clear();
      inbox_scratch_.reserve(num_agents() - 1);
      for (const auto& msg : broadcast_scratch_) {
        if (msg.from != rid && deliverable(msg.from, rid, t))
          inbox_scratch_.push_back(msg);
      }
      for (auto& [bid, bnode] : byzantine_) {
        if (!deliverable(bid, rid, t)) continue;
        if (auto payload = bnode->send_to(bid, rid, view)) {
          inbox_scratch_.push_back({bid, *payload});
        }
      }
      messages_delivered_ += inbox_scratch_.size();
      rnode->step(t, inbox_scratch_);
    }
  }

  /// Runs rounds 1..count.
  void run(std::size_t count) {
    for (std::size_t t = 1; t <= count; ++t) run_round(Round{static_cast<std::uint32_t>(t)});
  }

 private:
  bool deliverable(AgentId from, AgentId to, Round t) const {
    return !filter_ || filter_(from, to, t);
  }

  bool has_agent(AgentId id) const {
    for (const auto& [hid, _] : honest_)
      if (hid == id) return true;
    for (const auto& [bid, _] : byzantine_)
      if (bid == id) return true;
    return false;
  }

  std::vector<std::pair<AgentId, SyncNode<P>*>> honest_;
  std::vector<std::pair<AgentId, ByzantineNode<P>*>> byzantine_;
  DeliveryFilter filter_;
  std::uint64_t messages_delivered_ = 0;
  // Round-scoped scratch (see run_round); never read across rounds.
  std::vector<Received<P>> broadcast_scratch_;
  std::vector<Received<P>> inbox_scratch_;
};

}  // namespace ftmao
