#pragma once

// Generic asynchronous protocol engine: unicast messages with
// model-chosen delays, delivered one at a time in virtual-time order.
// Unlike net/async.hpp (which bakes in round-tagged broadcast semantics),
// this engine knows nothing about rounds — nodes are arbitrary message-in
// / messages-out state machines, which is what multi-phase protocols like
// Bracha reliable broadcast need. Byzantine nodes implement the same
// interface and may send anything to anyone.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/contracts.hpp"
#include "common/types.hpp"
#include "net/delay.hpp"

namespace ftmao {

template <typename M>
struct Unicast {
  AgentId to;
  M msg;
};

/// A protocol participant (honest or Byzantine — the engine does not
/// care). Returned unicasts are scheduled with the engine's delay model.
template <typename M>
class ProtoNode {
 public:
  virtual ~ProtoNode() = default;

  /// Messages sent unconditionally at time 0.
  virtual std::vector<Unicast<M>> boot() = 0;

  /// Reaction to one delivered message.
  virtual std::vector<Unicast<M>> on_receive(AgentId from, const M& msg) = 0;
};

template <typename M>
class ProtoEngine {
 public:
  explicit ProtoEngine(DelayModel& delays) : delays_(&delays) {}

  void add_node(AgentId id, ProtoNode<M>* node) {
    FTMAO_EXPECTS(node != nullptr);
    FTMAO_EXPECTS(find(id) == nullptr);
    nodes_.push_back({id, node});
  }

  /// Total deliveries processed across run() calls.
  std::uint64_t messages_delivered() const { return delivered_; }

  /// Runs until `done` returns true (checked after every delivery), the
  /// queue drains, or `max_events` deliveries happened (runaway guard).
  /// Returns the virtual time reached.
  double run(const std::function<bool()>& done,
             std::uint64_t max_events = 10'000'000) {
    for (auto& [id, node] : nodes_) {
      dispatch(id, node->boot(), 0.0);
    }
    double now = 0.0;
    std::uint64_t events = 0;
    while (!queue_.empty()) {
      if (done && done()) break;
      FTMAO_EXPECTS(events++ < max_events);
      Event ev = queue_.top();
      queue_.pop();
      now = ev.time;
      ProtoNode<M>* node = find(ev.to);
      if (node == nullptr) continue;
      ++delivered_;
      dispatch(ev.to, node->on_receive(ev.from, ev.msg), now);
    }
    return now;
  }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    AgentId from;
    AgentId to;
    M msg;

    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  ProtoNode<M>* find(AgentId id) {
    for (auto& [nid, node] : nodes_)
      if (nid == id) return node;
    return nullptr;
  }

  void dispatch(AgentId from, std::vector<Unicast<M>> out, double now) {
    for (auto& u : out) {
      const double delay =
          u.to == from ? 1e-9 : delays_->delay(from, u.to, now);
      queue_.push(Event{now + delay, next_seq_++, from, u.to, std::move(u.msg)});
    }
  }

  DelayModel* delays_;
  std::vector<std::pair<AgentId, ProtoNode<M>*>> nodes_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace ftmao
