#pragma once

// Asynchronous event-driven engine (Section 7's asynchronous extension).
//
// Messages carry a round tag and arrive after model-chosen delays. An
// honest node advances its round when it holds round-tagged messages from
// a quorum of distinct senders (the n > 5f variant uses quorum n - f,
// counting itself); advancing produces the next round's broadcast.
//
// Byzantine agents are triggered per round: as soon as the first honest
// broadcast of round t exists, each Byzantine agent chooses a per-recipient
// (possibly inconsistent, possibly absent) round-t payload, observing the
// honest round-t payloads that exist so far. The engine is deterministic
// given the delay model's seed.

#include <cstdint>
#include <optional>
#include <queue>
#include <span>
#include <vector>

#include "common/contracts.hpp"
#include "common/types.hpp"
#include "net/delay.hpp"
#include "net/sync.hpp"

namespace ftmao {

template <typename P>
struct TaggedMessage {
  AgentId from;
  Round round;
  P payload;
};

/// Honest asynchronous node: buffers tagged messages internally and
/// reports a new broadcast when its quorum for the current round is met.
template <typename P>
class AsyncNode {
 public:
  virtual ~AsyncNode() = default;

  /// Round-1 payload, emitted at time 0.
  virtual P initial_broadcast() = 0;

  /// Delivers one message. Returns the next round's broadcast payload if
  /// this delivery completed the current round's quorum, otherwise
  /// nullopt. May be called with future-round messages (buffer them) and
  /// duplicate senders (ignore repeats).
  virtual std::optional<P> on_message(const TaggedMessage<P>& msg) = 0;

  /// Round the node is currently collecting (1-based).
  virtual Round current_round() const = 0;
};

/// Byzantine behaviour in the async model: per-recipient round payloads.
template <typename P>
class AsyncByzantineNode {
 public:
  virtual ~AsyncByzantineNode() = default;

  /// Chooses the payload recipient sees for `round`; view holds the honest
  /// round-`round` broadcasts existing at trigger time. nullopt = omit.
  virtual std::optional<P> send_to(AgentId self, AgentId recipient,
                                   const RoundView<P>& view) = 0;
};

template <typename P>
class AsyncEngine {
 public:
  explicit AsyncEngine(DelayModel& delays) : delays_(&delays) {}

  void add_honest(AgentId id, AsyncNode<P>* node) {
    FTMAO_EXPECTS(node != nullptr);
    honest_.push_back({id, node});
  }

  void add_byzantine(AgentId id, AsyncByzantineNode<P>* node) {
    FTMAO_EXPECTS(node != nullptr);
    byzantine_.push_back({id, node});
  }

  /// Total deliveries processed so far.
  std::uint64_t messages_delivered() const { return delivered_; }

  /// Silences a sender from `time` on (crash fault: the node may keep
  /// running locally, but nothing it sends after the crash is delivered).
  void set_sender_crash(AgentId id, double time) {
    FTMAO_EXPECTS(time >= 0.0);
    crashes_.push_back({id, time});
  }

  /// Runs until every honest node has advanced past `target_round` or no
  /// events remain. Returns the virtual time consumed.
  double run_until_round(Round target_round) {
    // Time 0: everyone broadcasts round 1.
    for (auto& [id, node] : honest_) {
      publish(id, Round{1}, node->initial_broadcast(), 0.0);
    }
    double now = 0.0;
    while (!queue_.empty() && !all_done(target_round)) {
      Event ev = queue_.top();
      queue_.pop();
      now = ev.time;
      AsyncNode<P>* node = find_honest(ev.to);
      if (node == nullptr) continue;  // recipient not honest (shouldn't happen)
      ++delivered_;
      if (auto next = node->on_message(ev.msg)) {
        publish(ev.to, node->current_round(), *next, now);
      }
    }
    return now;
  }

 private:
  struct Event {
    double time;
    std::uint64_t seq;  // FIFO tie-break for determinism
    AgentId to;
    TaggedMessage<P> msg;

    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  // Broadcasts `payload` tagged `round` from an honest sender, schedules
  // deliveries, and triggers Byzantine round-`round` sends on the first
  // honest broadcast of that round.
  bool sender_crashed(AgentId from, double now) const {
    for (const auto& [id, time] : crashes_) {
      if (id == from && now >= time) return true;
    }
    return false;
  }

  void publish(AgentId from, Round round, const P& payload, double now) {
    if (sender_crashed(from, now)) return;
    honest_round_msgs_.push_back({from, round, payload});
    for (auto& [rid, rnode] : honest_) {
      if (rid == from) {
        // Self-delivery is immediate (an agent always has its own value).
        enqueue(now, rid, {from, round, payload});
      } else {
        enqueue(now + delays_->delay(from, rid, now), rid,
                {from, round, payload});
      }
    }
    trigger_byzantine(round, now);
  }

  void trigger_byzantine(Round round, double now) {
    if (byzantine_.empty()) return;
    if (std::find(byz_rounds_sent_.begin(), byz_rounds_sent_.end(), round) !=
        byz_rounds_sent_.end())
      return;
    byz_rounds_sent_.push_back(round);

    std::vector<Received<P>> visible;
    for (const auto& m : honest_round_msgs_) {
      if (m.round == round) visible.push_back({m.from, m.payload});
    }
    const RoundView<P> view{round, visible};
    for (auto& [bid, bnode] : byzantine_) {
      for (auto& [rid, rnode] : honest_) {
        if (auto payload = bnode->send_to(bid, rid, view)) {
          enqueue(now + delays_->delay(bid, rid, now), rid,
                  {bid, round, *payload});
        }
      }
    }
  }

  void enqueue(double time, AgentId to, TaggedMessage<P> msg) {
    queue_.push(Event{time, next_seq_++, to, std::move(msg)});
  }

  AsyncNode<P>* find_honest(AgentId id) {
    for (auto& [hid, node] : honest_)
      if (hid == id) return node;
    return nullptr;
  }

  bool all_done(Round target) const {
    for (const auto& [id, node] : honest_) {
      if (node->current_round() <= target) return false;
    }
    return true;
  }

  DelayModel* delays_;
  std::vector<std::pair<AgentId, AsyncNode<P>*>> honest_;
  std::vector<std::pair<AgentId, AsyncByzantineNode<P>*>> byzantine_;
  std::vector<TaggedMessage<P>> honest_round_msgs_;
  std::vector<Round> byz_rounds_sent_;
  std::vector<std::pair<AgentId, double>> crashes_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace ftmao
