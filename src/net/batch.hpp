#pragma once

// Batched-replica extensions of the synchronous engine model (net/sync.hpp).
//
// The batched engine (sim/batch_runner) advances B independent replicas of
// one scenario shape in lockstep: honest state lives in structure-of-arrays
// form and the hot reducers run across the replica dimension. Byzantine
// strategies, however, are arbitrary user code written against the scalar
// RoundView<P> interface — they must keep working unmodified, and their
// per-replica RNG streams must see exactly the call sequence the scalar
// SyncEngine would have produced.
//
// This header provides the bridge: BatchedHonestBroadcasts collects one
// round's honest broadcasts for every replica and exposes a per-replica
// RoundView<P> that is indistinguishable (same sender order, same payload
// values, same round) from the scalar engine's view. A strategy object
// belongs to exactly one replica and is always shown that replica's view,
// so rushing/adaptive/randomized adversaries behave identically whether
// the replica runs alone or inside a batch.

#include <cstddef>
#include <span>
#include <vector>

#include "common/contracts.hpp"
#include "common/types.hpp"
#include "net/sync.hpp"

namespace ftmao {

/// One round's honest broadcasts for B replicas, materialized per replica
/// in the scalar engine's array-of-structures order so unmodified
/// ByzantineNode implementations can observe them through RoundView<P>.
/// Buffers are reused across rounds: a T-round run allocates only while
/// the first round warms the per-replica vectors up.
template <typename P>
class BatchedHonestBroadcasts {
 public:
  /// Starts a round: `senders` is the honest population in engine add
  /// order (shared by all replicas — the batch runs one scenario shape).
  /// Invalidates views of previous rounds.
  void begin_round(Round round, std::size_t replicas,
                   std::span<const AgentId> senders) {
    FTMAO_EXPECTS(replicas >= 1);
    round_ = round;
    num_senders_ = senders.size();
    per_replica_.resize(replicas);
    for (auto& view : per_replica_) {
      view.resize(num_senders_);
      for (std::size_t s = 0; s < num_senders_; ++s) view[s].from = senders[s];
    }
  }

  /// Records sender `sender_index` (in begin_round order)'s broadcast for
  /// replica `replica`.
  void set(std::size_t sender_index, std::size_t replica, const P& payload) {
    per_replica_[replica][sender_index].payload = payload;
  }

  /// The scalar-equivalent view of the current round for one replica.
  /// Valid until the next begin_round.
  RoundView<P> view(std::size_t replica) const {
    return RoundView<P>{round_, per_replica_[replica]};
  }

  std::size_t num_senders() const { return num_senders_; }

 private:
  Round round_{0};
  std::size_t num_senders_ = 0;
  std::vector<std::vector<Received<P>>> per_replica_;
};

}  // namespace ftmao
