#include "net/delay.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace ftmao {

FixedDelay::FixedDelay(double d) : delay_(d) { FTMAO_EXPECTS(d > 0.0); }

double FixedDelay::delay(AgentId, AgentId, double) { return delay_; }

UniformDelay::UniformDelay(double lo, double hi, Rng rng)
    : lo_(lo), hi_(hi), rng_(rng) {
  FTMAO_EXPECTS(0.0 < lo && lo <= hi);
}

double UniformDelay::delay(AgentId, AgentId, double) {
  return rng_.uniform(lo_, hi_);
}

TargetedSlowdown::TargetedSlowdown(std::vector<AgentId> slow_senders,
                                   double fast_delay, double slow_delay)
    : slow_(std::move(slow_senders)), fast_(fast_delay), slow_delay_(slow_delay) {
  FTMAO_EXPECTS(0.0 < fast_delay && fast_delay <= slow_delay);
}

double TargetedSlowdown::delay(AgentId from, AgentId, double) {
  const bool is_slow = std::find(slow_.begin(), slow_.end(), from) != slow_.end();
  return is_slow ? slow_delay_ : fast_;
}

}  // namespace ftmao
