#include "fabric/lease.hpp"

#include <errno.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/contracts.hpp"
#include "common/json_min.hpp"

namespace ftmao::fabric {

namespace fs = std::filesystem;

namespace {

std::string format_double(double v) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw ContractViolation("fabric: cannot read '" + path + "'");
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os)
    throw ContractViolation("fabric: cannot open '" + path +
                            "' for writing");
  os << text;
  os.flush();
  if (!os)
    throw ContractViolation("fabric: write to '" + path + "' failed");
}

void check_version(int version, const std::string& what) {
  if (version != kFabricProtocolVersion)
    throw ContractViolation(
        "fabric " + what + ": protocol version " + std::to_string(version) +
        " does not match this binary's version " +
        std::to_string(kFabricProtocolVersion));
}

/// Atomically installs `tmp` at `target` iff `target` does not exist:
/// link(2) is atomic on one filesystem and fails with EEXIST when some
/// other process installed a file there first. The temp file is removed
/// either way.
bool publish_exclusive(const std::string& tmp, const std::string& target) {
  const int rc = ::link(tmp.c_str(), target.c_str());
  const int saved_errno = errno;
  ::unlink(tmp.c_str());
  if (rc == 0) return true;
  if (saved_errno == EEXIST) return false;
  throw ContractViolation("fabric: link('" + tmp + "', '" + target +
                          "') failed: " + std::strerror(saved_errno));
}

/// Atomically replaces `target` with `tmp` (rename never exposes a
/// partial document to readers).
void publish_replace(const std::string& tmp, const std::string& target) {
  std::error_code ec;
  fs::rename(tmp, target, ec);
  if (ec)
    throw ContractViolation("fabric: rename('" + tmp + "', '" + target +
                            "') failed: " + ec.message());
}

}  // namespace

FabricGrid make_fabric_grid(const SweepConfig& config,
                            std::size_t shard_count) {
  FTMAO_EXPECTS(shard_count >= 1);
  // The fabric forwards the grid to ftmao_sweep workers through its CLI,
  // whose --seeds flag can only express the canonical 1..k axis.
  for (std::size_t i = 0; i < config.seeds.size(); ++i)
    if (config.seeds[i] != i + 1)
      throw ContractViolation(
          "fabric grids require the canonical 1..k seed axis");
  FabricGrid grid;
  grid.shard_count = shard_count;
  grid.sizes = format_sizes(config.sizes);
  grid.dims = format_dims(config.dims);
  grid.attacks = format_attacks(config.attacks);
  grid.seeds = format_seeds(config.seeds);
  grid.rounds = config.rounds;
  grid.spread = config.spread;
  grid.step = format_step(config.step);
  grid.git_rev = build_git_revision();
  return grid;
}

SweepConfig config_from_grid(const FabricGrid& grid) {
  SweepConfig config;
  config.sizes = parse_sizes(grid.sizes);
  config.dims = parse_dims(grid.dims);
  config.attacks = parse_attacks(grid.attacks);
  config.seeds = parse_seeds(grid.seeds);
  config.rounds = grid.rounds;
  config.spread = grid.spread;
  config.step = parse_step(grid.step);
  return config;
}

std::string grid_to_json(const FabricGrid& g) {
  std::ostringstream os;
  os << "{\n"
     << "  \"version\": " << g.version << ",\n"
     << "  \"shard_count\": " << g.shard_count << ",\n"
     << "  \"sizes\": \"" << g.sizes << "\",\n"
     << "  \"dims\": \"" << g.dims << "\",\n"
     << "  \"attacks\": \"" << g.attacks << "\",\n"
     << "  \"seeds\": \"" << g.seeds << "\",\n"
     << "  \"rounds\": " << g.rounds << ",\n"
     << "  \"spread\": " << format_double(g.spread) << ",\n"
     << "  \"step\": \"" << g.step << "\",\n"
     << "  \"git_rev\": \"" << g.git_rev << "\"\n"
     << "}\n";
  return os.str();
}

FabricGrid grid_from_json(const std::string& json) {
  using namespace jsonmin;
  FabricGrid g;
  g.version = static_cast<int>(number_field(json, "version"));
  check_version(g.version, "grid");
  g.shard_count = static_cast<std::size_t>(number_field(json, "shard_count"));
  g.sizes = string_field(json, "sizes");
  g.dims = string_field(json, "dims");
  g.attacks = string_field(json, "attacks");
  g.seeds = string_field(json, "seeds");
  g.rounds = static_cast<std::size_t>(number_field(json, "rounds"));
  g.spread = number_field(json, "spread");
  g.step = string_field(json, "step");
  g.git_rev = string_field(json, "git_rev");
  if (g.shard_count < 1)
    throw ContractViolation("fabric grid: shard_count must be >= 1");
  return g;
}

std::string lease_to_json(const ShardLease& l) {
  std::ostringstream os;
  os << "{\n"
     << "  \"version\": " << l.version << ",\n"
     << "  \"shard_index\": " << l.shard_index << ",\n"
     << "  \"shard_count\": " << l.shard_count << ",\n"
     << "  \"attempt\": " << l.attempt << ",\n"
     << "  \"worker_id\": \"" << l.worker_id << "\",\n"
     << "  \"git_rev\": \"" << l.git_rev << "\",\n"
     << "  \"isa\": \"" << l.isa << "\",\n"
     << "  \"heartbeat_ms\": " << l.heartbeat_ms << "\n"
     << "}\n";
  return os.str();
}

ShardLease lease_from_json(const std::string& json) {
  using namespace jsonmin;
  ShardLease l;
  l.version = static_cast<int>(number_field(json, "version"));
  check_version(l.version, "lease");
  l.shard_index = static_cast<std::size_t>(number_field(json, "shard_index"));
  l.shard_count = static_cast<std::size_t>(number_field(json, "shard_count"));
  l.attempt = static_cast<int>(number_field(json, "attempt"));
  l.worker_id = string_field(json, "worker_id");
  l.git_rev = string_field(json, "git_rev");
  l.isa = string_field(json, "isa");
  l.heartbeat_ms =
      static_cast<std::uint64_t>(number_field(json, "heartbeat_ms"));
  if (l.shard_index >= l.shard_count)
    throw ContractViolation("fabric lease: shard_index >= shard_count");
  if (l.attempt < 1)
    throw ContractViolation("fabric lease: attempt must be >= 1");
  return l;
}

std::string completion_to_json(const CompletionRecord& r) {
  std::ostringstream os;
  os << "{\n"
     << "  \"version\": " << r.version << ",\n"
     << "  \"shard_index\": " << r.shard_index << ",\n"
     << "  \"attempt\": " << r.attempt << ",\n"
     << "  \"worker_id\": \"" << r.worker_id << "\",\n"
     << "  \"git_rev\": \"" << r.git_rev << "\",\n"
     << "  \"isa\": \"" << r.isa << "\",\n"
     << "  \"wall_ms\": " << format_double(r.wall_ms) << "\n"
     << "}\n";
  return os.str();
}

CompletionRecord completion_from_json(const std::string& json) {
  using namespace jsonmin;
  CompletionRecord r;
  r.version = static_cast<int>(number_field(json, "version"));
  check_version(r.version, "completion record");
  r.shard_index = static_cast<std::size_t>(number_field(json, "shard_index"));
  r.attempt = static_cast<int>(number_field(json, "attempt"));
  r.worker_id = string_field(json, "worker_id");
  r.git_rev = string_field(json, "git_rev");
  r.isa = string_field(json, "isa");
  r.wall_ms = number_field(json, "wall_ms");
  return r;
}

std::uint64_t wall_clock_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

bool lease_expired(const ShardLease& lease, std::uint64_t now_ms,
                   std::uint64_t ttl_ms) {
  return now_ms > lease.heartbeat_ms && now_ms - lease.heartbeat_ms > ttl_ms;
}

LeaseDir::LeaseDir(std::string root) : root_(std::move(root)) {
  FTMAO_EXPECTS(!root_.empty());
}

std::string LeaseDir::csv_path(std::size_t shard) const {
  return root_ + "/results/shard_" + std::to_string(shard) + ".csv";
}

std::string LeaseDir::manifest_path(std::size_t shard) const {
  return root_ + "/results/shard_" + std::to_string(shard) + ".json";
}

std::string LeaseDir::lease_path(std::size_t shard, int attempt) const {
  return root_ + "/leases/shard_" + std::to_string(shard) + ".a" +
         std::to_string(attempt) + ".lease";
}

std::string LeaseDir::done_path(std::size_t shard) const {
  return root_ + "/results/shard_" + std::to_string(shard) + ".done.json";
}

std::string LeaseDir::scratch_path(const std::string& worker_id,
                                   const std::string& name) const {
  return root_ + "/results/.wip_" + worker_id + "_" + name;
}

void LeaseDir::init(const FabricGrid& grid) {
  fs::create_directories(root_ + "/leases");
  fs::create_directories(root_ + "/results");
  const std::string grid_path = root_ + "/grid.json";
  const std::string json = grid_to_json(grid);
  if (fs::exists(grid_path)) {
    if (grid_from_json(read_file(grid_path)) != grid)
      throw ContractViolation(
          "fabric: '" + root_ +
          "' is already initialized with a different grid");
    return;
  }
  const std::string tmp = grid_path + ".tmp";
  write_file(tmp, json);
  if (!publish_exclusive(tmp, grid_path)) {
    // Lost an init race; the winner's grid must be ours.
    if (grid_from_json(read_file(grid_path)) != grid)
      throw ContractViolation(
          "fabric: '" + root_ +
          "' was concurrently initialized with a different grid");
  }
}

bool LeaseDir::initialized() const {
  return fs::exists(root_ + "/grid.json");
}

FabricGrid LeaseDir::load_grid() const {
  return grid_from_json(read_file(root_ + "/grid.json"));
}

std::optional<ShardLease> LeaseDir::current_lease(std::size_t shard) const {
  const std::string prefix = "shard_" + std::to_string(shard) + ".a";
  std::optional<ShardLease> best;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_ + "/leases", ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) != 0 || name.find(".lease") == std::string::npos)
      continue;
    ShardLease lease;
    try {
      lease = lease_from_json(read_file(entry.path().string()));
    } catch (const std::exception&) {
      continue;  // partially transported artifact; a newer attempt decides
    }
    if (lease.shard_index != shard) continue;
    if (!best || lease.attempt > best->attempt) best = lease;
  }
  return best;
}

bool LeaseDir::try_claim(const ShardLease& lease) {
  const std::string target = lease_path(lease.shard_index, lease.attempt);
  const std::string tmp = scratch_path(
      lease.worker_id, "claim_" + std::to_string(lease.shard_index) + ".a" +
                           std::to_string(lease.attempt));
  write_file(tmp, lease_to_json(lease));
  return publish_exclusive(tmp, target);
}

void LeaseDir::renew(ShardLease& lease) {
  lease.heartbeat_ms = wall_clock_ms();
  const std::string tmp = scratch_path(
      lease.worker_id, "renew_" + std::to_string(lease.shard_index) + ".a" +
                           std::to_string(lease.attempt));
  write_file(tmp, lease_to_json(lease));
  publish_replace(tmp, lease_path(lease.shard_index, lease.attempt));
}

bool LeaseDir::completed(std::size_t shard) const {
  return fs::exists(done_path(shard));
}

bool LeaseDir::publish_completion(const CompletionRecord& record,
                                  const std::string& csv_scratch,
                                  const std::string& manifest_scratch) {
  if (completed(record.shard_index)) {
    std::error_code ec;
    fs::remove(csv_scratch, ec);
    fs::remove(manifest_scratch, ec);
    return false;
  }
  // Artifacts first, done record last: the done record is the commit
  // point, so a reader that sees it also sees the CSV and manifest.
  publish_replace(csv_scratch, csv_path(record.shard_index));
  publish_replace(manifest_scratch, manifest_path(record.shard_index));
  const std::string tmp = scratch_path(
      record.worker_id, "done_" + std::to_string(record.shard_index));
  write_file(tmp, completion_to_json(record));
  return publish_exclusive(tmp, done_path(record.shard_index));
}

std::vector<CompletionRecord> LeaseDir::completions(
    std::vector<std::string>& errors) const {
  std::vector<CompletionRecord> records;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_ + "/results", ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("shard_", 0) != 0 ||
        name.find(".done") == std::string::npos ||
        name.size() < 5 || name.substr(name.size() - 5) != ".json")
      continue;
    try {
      records.push_back(completion_from_json(read_file(entry.path().string())));
    } catch (const std::exception& e) {
      errors.push_back("completion record '" + entry.path().string() +
                       "': " + e.what());
    }
  }
  return records;
}

}  // namespace ftmao::fabric
