#pragma once

// Fabric lease protocol: the versioned JSON records and the
// filesystem/artifact "transport" the multi-node sweep fabric runs over.
//
// A fabric directory is shared state between workers — a real shared
// directory when workers are processes on one machine, an
// upload/download-overlaid artifact when workers are CI runners:
//
//   <root>/grid.json                       the grid, pinned at init
//   <root>/leases/shard_<i>.a<k>.lease     claim of attempt k on shard i
//   <root>/results/shard_<i>.csv           the worker's shard CSV
//   <root>/results/shard_<i>.json          the ftmao_sweep shard manifest
//   <root>/results/shard_<i>.done.json     completion record (commit point)
//
// Claims are atomic: a lease is written to a temp file and `link(2)`ed to
// its final name, which fails with EEXIST if any other worker claimed
// that (shard, attempt) first — exactly one winner per attempt, no
// locking daemon. Heartbeats rewrite the holder's own lease through a
// temp-file + rename, so readers always observe a complete document.
// Stealing is claiming attempt k+1 after attempt k's heartbeat went
// stale; completion is first-wins `link(2)` of the done record, which is
// safe even when a presumed-dead worker finishes late — the determinism
// contract makes both workers' CSVs byte-identical, and the merge
// cross-checks any overlap bit-for-bit anyway.
//
// Every record carries a protocol version (kFabricProtocolVersion);
// readers reject any other version, so a future socket transport can
// evolve the schema without silently misreading old artifacts.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/shard.hpp"
#include "sim/sweep.hpp"

namespace ftmao::fabric {

inline constexpr int kFabricProtocolVersion = 1;

/// The grid a fabric run computes, pinned once at `--mode init` so every
/// worker — local process or CI runner — enumerates the identical cell
/// set and partition. Field syntax is the shard-manifest grid codec
/// (sim/shard.hpp format_*/parse_* helpers).
struct FabricGrid {
  int version = kFabricProtocolVersion;
  std::size_t shard_count = 0;
  std::string sizes;
  std::string dims = "1";
  std::string attacks;
  std::string seeds;  ///< must be the canonical 1..k list (CLI-expressible)
  std::size_t rounds = 0;
  double spread = 8.0;
  std::string step;
  std::string git_rev = "unknown";  ///< build that initialized the fabric

  friend bool operator==(const FabricGrid&, const FabricGrid&) = default;
};

FabricGrid make_fabric_grid(const SweepConfig& config,
                            std::size_t shard_count);
SweepConfig config_from_grid(const FabricGrid& grid);
std::string grid_to_json(const FabricGrid& grid);
FabricGrid grid_from_json(const std::string& json);  ///< throws on mismatch

/// One worker's claim on one attempt of one shard. The heartbeat is
/// wall-clock milliseconds (system_clock) — cross-machine skew is
/// tolerated by generous TTLs, not by clock agreement.
struct ShardLease {
  int version = kFabricProtocolVersion;
  std::size_t shard_index = 0;
  std::size_t shard_count = 0;
  int attempt = 1;  ///< lease generation; steals claim attempt + 1
  std::string worker_id;
  std::string git_rev = "unknown";
  std::string isa = "auto";
  std::uint64_t heartbeat_ms = 0;  ///< last claim/renewal, wall-clock ms

  friend bool operator==(const ShardLease&, const ShardLease&) = default;
};

std::string lease_to_json(const ShardLease& lease);
ShardLease lease_from_json(const std::string& json);  ///< throws on mismatch

/// Published when a worker finishes a shard: who computed it, under what
/// build/backend, on which lease attempt. The merge stage audits these
/// before touching the CSVs.
struct CompletionRecord {
  int version = kFabricProtocolVersion;
  std::size_t shard_index = 0;
  int attempt = 1;
  std::string worker_id;
  std::string git_rev = "unknown";
  std::string isa = "auto";
  double wall_ms = 0.0;

  friend bool operator==(const CompletionRecord&,
                         const CompletionRecord&) = default;
};

std::string completion_to_json(const CompletionRecord& record);
CompletionRecord completion_from_json(const std::string& json);

/// Wall-clock now in milliseconds since the epoch (heartbeat domain).
std::uint64_t wall_clock_ms();

/// Stale iff the heartbeat is older than ttl_ms at `now_ms`.
bool lease_expired(const ShardLease& lease, std::uint64_t now_ms,
                   std::uint64_t ttl_ms);

/// The fabric directory: layout, atomic claims, renewal, completion.
/// Pure filesystem mechanics — policy (who claims what, when a lease
/// counts as stale) lives in fabric/fabric.hpp.
class LeaseDir {
 public:
  explicit LeaseDir(std::string root);

  /// Creates the layout and atomically publishes grid.json. Re-initing
  /// with the identical grid is a no-op; a different grid throws.
  void init(const FabricGrid& grid);
  bool initialized() const;
  FabricGrid load_grid() const;  ///< throws if absent/mismatched version

  /// The highest-attempt lease on `shard`, if any worker ever claimed it.
  std::optional<ShardLease> current_lease(std::size_t shard) const;

  /// Atomically claims (lease.shard_index, lease.attempt). False iff some
  /// worker holds that exact attempt already — the duplicate-claim case.
  bool try_claim(const ShardLease& lease);

  /// Rewrites the holder's lease with a fresh heartbeat (atomic rename).
  void renew(ShardLease& lease);

  bool completed(std::size_t shard) const;

  /// First-wins publication: moves the worker's CSV + manifest from their
  /// scratch paths to the canonical names, then links the done record.
  /// False iff another worker completed the shard first (the caller's
  /// artifacts are discarded; outputs are byte-identical by contract).
  bool publish_completion(const CompletionRecord& record,
                          const std::string& csv_scratch,
                          const std::string& manifest_scratch);

  /// Every completion record in results/ (any file named
  /// shard_*.done*.json — overlaid artifact dirs can carry duplicates,
  /// which the merge stage must see to reject). Unreadable or
  /// wrong-version records are reported through `errors` and skipped, so
  /// one bad artifact degrades the merge instead of aborting it.
  std::vector<CompletionRecord> completions(
      std::vector<std::string>& errors) const;

  std::string csv_path(std::size_t shard) const;
  std::string manifest_path(std::size_t shard) const;
  std::string lease_path(std::size_t shard, int attempt) const;
  std::string done_path(std::size_t shard) const;

  /// Worker-private scratch path inside results/ (same filesystem, so the
  /// publishing rename is atomic).
  std::string scratch_path(const std::string& worker_id,
                           const std::string& name) const;

  const std::string& root() const { return root_; }

 private:
  std::string root_;
};

}  // namespace ftmao::fabric
