#include "fabric/backoff.hpp"

#include <algorithm>

namespace ftmao::fabric {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

}  // namespace

std::uint64_t shard_backoff_seed(std::size_t shard_index) {
  return splitmix64(static_cast<std::uint64_t>(shard_index));
}

std::int64_t retry_delay_ms(const BackoffPolicy& policy, std::uint64_t seed,
                            int attempt) {
  if (policy.base_ms <= 0) return 0;
  if (attempt < 1) attempt = 1;
  const std::uint64_t mix =
      splitmix64(seed ^ static_cast<std::uint64_t>(attempt));
  const std::int64_t jitter =
      static_cast<std::int64_t>(mix % static_cast<std::uint64_t>(policy.base_ms));
  const std::int64_t linear = policy.base_ms * attempt;
  return std::min(policy.max_ms, linear + jitter);
}

}  // namespace ftmao::fabric
