#pragma once

// Unified retry/backoff policy for everything that re-executes failed
// shards: the in-process orchestrator (apps/ftmao_shardsweep) and the
// multi-node fabric worker (fabric/fabric.hpp). One definition so the
// two paths cannot drift.
//
// The delay for attempt k is linear-with-jitter:
//
//   delay(k) = min(max_ms, k * base_ms + jitter(seed, k))
//
// where jitter is drawn deterministically from [0, base_ms) by
// splitmix64 over (seed ^ k). Determinism matters twice over: retries
// reproduce exactly under a fixed grid (debuggable), and because the
// jitter is seeded from the *shard hash*, shards that fail at the same
// moment (a wedged machine taking all its workers down at once) retry at
// staggered times instead of stampeding the claim directory in lockstep.

#include <cstddef>
#include <cstdint>

namespace ftmao::fabric {

struct BackoffPolicy {
  std::int64_t base_ms = 200;  ///< linear step; also the jitter window
  std::int64_t max_ms = 10'000;  ///< cap on any single delay
};

/// Stable per-shard jitter seed (splitmix64-finalized shard index), so
/// the jitter sequence of a shard is a pure function of its identity.
std::uint64_t shard_backoff_seed(std::size_t shard_index);

/// Delay before retry `attempt` (1-based: the delay scheduled *after*
/// attempt k failed). base_ms <= 0 disables backoff entirely (0).
std::int64_t retry_delay_ms(const BackoffPolicy& policy, std::uint64_t seed,
                            int attempt);

}  // namespace ftmao::fabric
