#pragma once

// The fabric worker loop and the fabric-level verifying merge.
//
// A fabric run has no resident coordinator process: coordination *is*
// the lease directory (fabric/lease.hpp). Any number of workers — local
// processes sharing the directory, or CI runners exchanging it as an
// artifact — run the same loop:
//
//   1. scan shards in a worker-rotated order; skip completed shards and
//      shards under a live (unexpired) foreign lease;
//   2. atomically claim the next attempt of anything unclaimed or stale
//      (claiming attempt k+1 of a stale attempt-k lease IS the
//      work-stealing move);
//   3. execute the shard through the existing `ftmao_sweep --shard-index`
//      path (or an injected runner in tests), renewing the lease's
//      heartbeat from a side thread while it runs;
//   4. publish CSV + manifest + completion record first-wins;
//   5. on failure, retry under the same lease with the unified
//      backoff-with-deterministic-jitter policy (fabric/backoff.hpp) up
//      to a local budget.
//
// Worker-local retries stay within one lease (the holder is alive — it
// just had a failing attempt); cross-worker re-leasing happens only when
// heartbeats go stale. The merge stage then audits completion records
// (protocol version, exactly one completion per shard, git-rev/ISA
// agreement) before handing the per-shard artifacts to the existing
// order-free verifying merge (sim/shard_merge.hpp), so a complete fabric
// run's CSV is byte-identical to the single-process `run_sweep` CSV.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "fabric/backoff.hpp"
#include "fabric/lease.hpp"
#include "sim/shard_merge.hpp"

namespace ftmao::fabric {

/// Executes one shard of `config`, writing the shard CSV and manifest to
/// the given scratch paths. Returns a process-style status (0 = success).
/// The default (apps/ftmao_fabric.cpp) spawns `ftmao_sweep`; tests inject
/// an in-process runner.
using ShardRunner = std::function<int(
    const SweepConfig& config, std::size_t shard, std::size_t shard_count,
    const std::string& csv_scratch, const std::string& manifest_scratch)>;

struct WorkerOptions {
  std::string fabric_dir;
  std::string worker_id;
  ShardRunner runner;

  std::uint64_t lease_ttl_ms = 60'000;  ///< heartbeat staleness threshold
  int retries = 2;              ///< extra local attempts per shard
  BackoffPolicy backoff;        ///< shared retry policy (jittered)

  /// CI-matrix slice: when fleet_size > 0, claim only shards with
  /// shard_index % fleet_size == fleet_index (each runner owns a disjoint
  /// slice; stealing across slices is the recovery worker's job).
  long fleet_index = -1;
  long fleet_size = 0;

  /// Keep polling (and stealing stragglers as their leases expire) until
  /// every shard is completed, instead of returning when nothing is
  /// claimable. Bounded by max_wall_sec when > 0.
  bool wait_all = false;
  double max_wall_sec = 0;

  /// Test hook: after claiming this shard, the worker raises SIGKILL on
  /// itself — a mid-shard death that leaves a stale lease for another
  /// worker to steal. -1 = off.
  long inject_die_shard = -1;

  std::ostream* log = nullptr;  ///< progress/retry lines (nullable)
};

struct WorkerReport {
  std::size_t claimed = 0;    ///< leases this worker won
  std::size_t completed = 0;  ///< shards this worker published
  std::size_t stolen = 0;     ///< claims that re-leased a stale foreign lease
  bool all_done = false;      ///< every shard of the grid has a completion
  bool slice_done = false;    ///< every shard this worker may claim is done
  std::vector<std::string> errors;

  bool ok(bool wait_all) const {
    return errors.empty() && (wait_all ? all_done : slice_done);
  }
};

/// Runs the worker loop until no claimable work remains (or, with
/// wait_all, until the grid is complete / the deadline passes).
WorkerReport run_fabric_worker(const WorkerOptions& options);

struct FabricMergeOptions {
  std::string fabric_dir;
  /// Completion records normally must agree on the active SIMD backend —
  /// not for correctness (all backends are bit-identical) but as a
  /// protocol-level audit that the fleet ran the configuration it was
  /// told to. A deliberately heterogeneous fleet sets this.
  bool allow_isa_mix = false;
};

struct FabricMergeReport {
  std::vector<CompletionRecord> completions;  ///< one per completed shard
  std::vector<std::string> errors;  ///< fabric-protocol violations
  MergeReport merge;                ///< the underlying verifying merge

  bool ok() const { return errors.empty() && merge.ok(); }
};

/// Audits completion records (version, double completion, git-rev/ISA
/// agreement), loads the per-shard artifacts, and runs the order-free
/// verifying merge. Inconsistent *data* is reported, not thrown.
FabricMergeReport collect_and_merge(const FabricMergeOptions& options);

}  // namespace ftmao::fabric
