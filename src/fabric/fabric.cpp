#include "fabric/fabric.hpp"

#include <signal.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>

#include "common/contracts.hpp"
#include "simd/simd.hpp"

namespace ftmao::fabric {

namespace {

using Clock = std::chrono::steady_clock;

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw ContractViolation("fabric: cannot read '" + path + "'");
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

void log_line(std::ostream* log, const std::string& line) {
  if (log != nullptr) *log << "fabric: " << line << std::endl;
}

/// Renews a lease's heartbeat from a side thread while the shard runs,
/// so a long shard never looks stale to other workers.
class HeartbeatThread {
 public:
  HeartbeatThread(LeaseDir& dir, ShardLease lease, std::uint64_t ttl_ms) {
    const auto interval = std::chrono::milliseconds(
        std::max<std::uint64_t>(ttl_ms / 3, 20));
    thread_ = std::thread([this, &dir, lease, interval]() mutable {
      std::unique_lock<std::mutex> lock(mutex_);
      while (!cv_.wait_for(lock, interval, [this] { return stop_; }))
        dir.renew(lease);
    });
  }

  ~HeartbeatThread() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace

WorkerReport run_fabric_worker(const WorkerOptions& options) {
  WorkerReport report;
  FTMAO_EXPECTS(options.runner != nullptr);
  FTMAO_EXPECTS(!options.worker_id.empty());

  LeaseDir dir(options.fabric_dir);
  FabricGrid grid;
  SweepConfig config;
  try {
    grid = dir.load_grid();
    config = config_from_grid(grid);
    config.validate();
  } catch (const std::exception& e) {
    report.errors.push_back(std::string("cannot load fabric grid: ") +
                            e.what());
    return report;
  }
  if (grid.git_rev != build_git_revision()) {
    report.errors.push_back("fabric was initialized by build '" +
                            grid.git_rev + "' but this worker is build '" +
                            build_git_revision() + "' (mixing binaries)");
    return report;
  }

  const std::size_t shard_count = grid.shard_count;
  const auto claimable = [&](std::size_t shard) {
    if (options.fleet_size <= 0) return true;
    return static_cast<long>(shard % static_cast<std::size_t>(
                                         options.fleet_size)) ==
           options.fleet_index;
  };
  // Rotate each worker's scan to a different start so a fleet sharing one
  // directory does not contend on shard 0 first.
  const std::size_t rotation = fnv1a(options.worker_id) % shard_count;

  std::vector<int> attempts_used(shard_count, 0);
  std::vector<Clock::time_point> eligible(shard_count, Clock::now());
  const Clock::time_point deadline =
      options.max_wall_sec > 0
          ? Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(
                                   options.max_wall_sec))
          : Clock::time_point::max();

  const std::string isa = simd_isa_name(simd_active());

  while (true) {
    bool all_done = true;
    bool slice_done = true;
    for (std::size_t i = 0; i < shard_count; ++i) {
      if (dir.completed(i)) continue;
      all_done = false;
      if (claimable(i)) slice_done = false;
    }
    if (all_done || (slice_done && !options.wait_all)) break;

    bool did_work = false;
    bool retry_pending = false;
    for (std::size_t off = 0; off < shard_count; ++off) {
      const std::size_t i = (rotation + off) % shard_count;
      if (!claimable(i) || dir.completed(i)) continue;
      if (attempts_used[i] > options.retries) continue;  // local budget spent
      if (Clock::now() < eligible[i]) {
        retry_pending = true;
        continue;
      }

      const std::optional<ShardLease> current = dir.current_lease(i);
      const std::uint64_t now_ms = wall_clock_ms();
      ShardLease mine;
      if (current && current->worker_id == options.worker_id) {
        // Our own lease (a local retry, or a previous run of this worker
        // id): re-run under it — worker-local retries never re-lease.
        mine = *current;
      } else {
        if (current && !lease_expired(*current, now_ms, options.lease_ttl_ms))
          continue;  // live foreign lease; its holder is working
        mine.shard_index = i;
        mine.shard_count = shard_count;
        mine.attempt = current ? current->attempt + 1 : 1;
        mine.worker_id = options.worker_id;
        mine.git_rev = build_git_revision();
        mine.isa = isa;
        mine.heartbeat_ms = now_ms;
        if (!dir.try_claim(mine)) continue;  // lost the claim race
        ++report.claimed;
        if (current) {
          ++report.stolen;
          log_line(options.log,
                   "stole shard " + std::to_string(i) + " from stale lease of "
                   "'" + current->worker_id + "' (attempt " +
                   std::to_string(mine.attempt) + ")");
        } else {
          log_line(options.log, "claimed shard " + std::to_string(i) +
                                    " (attempt " +
                                    std::to_string(mine.attempt) + ")");
        }
        if (options.inject_die_shard >= 0 &&
            i == static_cast<std::size_t>(options.inject_die_shard)) {
          log_line(options.log,
                   "inject-die: raising SIGKILL after claiming shard " +
                       std::to_string(i));
          if (options.log != nullptr) options.log->flush();
          ::raise(SIGKILL);
        }
      }

      ++attempts_used[i];
      dir.renew(mine);  // fresh heartbeat before (re)running
      const std::string csv_scratch = dir.scratch_path(
          options.worker_id, "shard_" + std::to_string(i) + ".csv");
      const std::string manifest_scratch = dir.scratch_path(
          options.worker_id, "shard_" + std::to_string(i) + ".manifest.json");
      int status = 0;
      const Clock::time_point started = Clock::now();
      {
        HeartbeatThread heartbeat(dir, mine, options.lease_ttl_ms);
        try {
          status = options.runner(config, i, shard_count, csv_scratch,
                                  manifest_scratch);
        } catch (const std::exception& e) {
          status = -1;
          log_line(options.log, "shard " + std::to_string(i) +
                                    " runner threw: " + e.what());
        }
      }
      const double wall_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - started)
              .count();

      did_work = true;
      if (status == 0) {
        CompletionRecord record;
        record.shard_index = i;
        record.attempt = mine.attempt;
        record.worker_id = options.worker_id;
        record.git_rev = build_git_revision();
        record.isa = isa;
        record.wall_ms = wall_ms;
        if (dir.publish_completion(record, csv_scratch, manifest_scratch)) {
          ++report.completed;
          log_line(options.log, "completed shard " + std::to_string(i) +
                                    " (attempt " +
                                    std::to_string(mine.attempt) + ")");
        } else {
          log_line(options.log,
                   "shard " + std::to_string(i) +
                       " was completed by another worker first; discarding "
                       "this attempt's artifacts");
        }
      } else if (attempts_used[i] > options.retries) {
        log_line(options.log, "shard " + std::to_string(i) +
                                  " unrecoverable after " +
                                  std::to_string(attempts_used[i]) +
                                  " local attempts (status " +
                                  std::to_string(status) + ")");
      } else {
        const std::int64_t delay = retry_delay_ms(
            options.backoff, shard_backoff_seed(i), attempts_used[i]);
        eligible[i] = Clock::now() + std::chrono::milliseconds(delay);
        retry_pending = true;
        log_line(options.log, "shard " + std::to_string(i) + " attempt " +
                                  std::to_string(attempts_used[i]) +
                                  " failed (status " + std::to_string(status) +
                                  ") — retrying in " + std::to_string(delay) +
                                  " ms");
      }
    }

    if (did_work) continue;
    if (Clock::now() >= deadline) {
      report.errors.push_back("deadline (--max-wall-sec) passed with shards "
                              "still incomplete");
      break;
    }
    if (retry_pending || options.wait_all) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }
    break;  // nothing claimable and not asked to wait
  }

  report.all_done = true;
  report.slice_done = true;
  for (std::size_t i = 0; i < shard_count; ++i) {
    if (dir.completed(i)) continue;
    report.all_done = false;
    if (claimable(i)) report.slice_done = false;
  }
  return report;
}

FabricMergeReport collect_and_merge(const FabricMergeOptions& options) {
  FabricMergeReport report;
  LeaseDir dir(options.fabric_dir);
  FabricGrid grid;
  try {
    grid = dir.load_grid();
  } catch (const std::exception& e) {
    report.errors.push_back(std::string("cannot load fabric grid: ") +
                            e.what());
    return report;
  }

  std::vector<CompletionRecord> records = dir.completions(report.errors);
  std::sort(records.begin(), records.end(),
            [](const CompletionRecord& a, const CompletionRecord& b) {
              return a.shard_index < b.shard_index ||
                     (a.shard_index == b.shard_index && a.attempt < b.attempt);
            });

  std::map<std::size_t, std::vector<CompletionRecord>> by_shard;
  for (const CompletionRecord& record : records) {
    if (record.shard_index >= grid.shard_count) {
      report.errors.push_back(
          "completion record for shard " + std::to_string(record.shard_index) +
          " outside the grid's " + std::to_string(grid.shard_count) +
          " shards");
      continue;
    }
    by_shard[record.shard_index].push_back(record);
  }

  // Protocol audit: exactly one completion per shard, and one build/ISA
  // across the fleet. The lease protocol makes double completion
  // impossible within one directory (first-wins link), so a duplicate
  // here means overlaid artifacts from divergent runs — refuse the shard.
  const CompletionRecord* reference = nullptr;
  for (auto& [shard, shard_records] : by_shard) {
    if (shard_records.size() > 1) {
      std::string who;
      for (const CompletionRecord& r : shard_records) {
        if (!who.empty()) who += " and ";
        who += "'" + r.worker_id + "' (attempt " + std::to_string(r.attempt) +
               ")";
      }
      report.errors.push_back("double completion of shard " +
                              std::to_string(shard) + " by " + who);
      continue;
    }
    const CompletionRecord& record = shard_records.front();
    if (record.git_rev != grid.git_rev) {
      report.errors.push_back(
          "shard " + std::to_string(shard) + ": completed by build '" +
          record.git_rev + "' but the fabric grid was initialized by '" +
          grid.git_rev + "' (mixing binaries)");
      continue;
    }
    if (reference == nullptr) {
      reference = &record;
    } else if (!options.allow_isa_mix && record.isa != reference->isa) {
      report.errors.push_back(
          "shard " + std::to_string(shard) + ": completed under ISA '" +
          record.isa + "' but shard " +
          std::to_string(reference->shard_index) + " ran under '" +
          reference->isa + "' (pass --allow-isa-mix for heterogeneous "
          "fleets)");
      continue;
    }
    report.completions.push_back(record);
  }

  std::vector<ShardArtifact> artifacts;
  for (const CompletionRecord& record : report.completions) {
    try {
      ShardArtifact artifact;
      artifact.manifest =
          manifest_from_json(read_file(dir.manifest_path(record.shard_index)));
      artifact.csv = read_file(dir.csv_path(record.shard_index));
      artifacts.push_back(std::move(artifact));
    } catch (const std::exception& e) {
      report.errors.push_back("shard " + std::to_string(record.shard_index) +
                              ": unreadable artifacts: " + e.what());
    }
  }
  report.merge = merge_shards(artifacts);
  return report;
}

}  // namespace ftmao::fabric
