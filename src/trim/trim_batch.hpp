#pragma once

// Batched (structure-of-arrays) variants of the Section 4 reducers.
//
// The sweep/certify/attack-search drivers run the *same* scenario shape
// many times (seeds, attack candidates); advancing B replicas in lockstep
// turns every Trim over a fan-in of n values into n compare-exchanges over
// contiguous lanes of B doubles — a shape compilers auto-vectorize.
//
// Layout: `data` holds an n x batch matrix, row-major by *slot*:
// data[slot * batch + r] is the slot-th multiset entry of replica r. Rows
// are contiguous, so an elementwise min/max of two rows is one vector loop.
//
// Kernel: for n <= kMaxSortingNetworkN the rows are run through a Batcher
// odd-even mergesort network — a fixed, data-independent comparator
// sequence (branchless: each comparator is a lanewise conditional swap)
// executed by the runtime-dispatched SIMD lane backend (simd/simd.hpp:
// scalar, SSE2, or AVX2, selected by cpuid). After the network, row k
// holds every replica's k-th order statistic, so Trim reads rows f and
// n-1-f and the trimmed mean sums rows f..n-1-f. Larger n falls back to
// the scalar per-replica path (nth_element / sort), bit-identical to
// trim()/trimmed_mean() by construction.
//
// Bit-identity with the scalar reducers holds for every n, batch, and
// backend: the conditional-swap comparator is multiset-preserving even
// across signed zeros (simd/simd.hpp, rule 2), so the network output is a
// true permutation and order statistics are well-defined values of the
// multiset; the midpoint / mean arithmetic matches the scalar
// implementations operation for operation in every lane.

#include <cstddef>
#include <cstdint>
#include <span>

#include "simd/simd.hpp"  // ComparatorPair, lane backends the kernels run on

namespace ftmao {

/// Largest fan-in handled by the fixed comparator networks. The paper's
/// complete graphs stay far below this (n <= ~32 in every experiment);
/// beyond it the batched kernels fall back to the scalar path per replica.
inline constexpr std::size_t kMaxSortingNetworkN = 32;

/// The Batcher odd-even mergesort comparator sequence for n elements
/// (2 <= n <= kMaxSortingNetworkN). Built once per process, cached;
/// thread-safe. Applying the comparators in order sorts any n-element
/// array ascending.
std::span<const ComparatorPair> sorting_network(std::size_t n);

/// Sorts every replica column of the n x batch SoA matrix ascending (row k
/// ends up holding each replica's k-th order statistic). Uses the
/// comparator network for n <= kMaxSortingNetworkN, per-column std::sort
/// beyond. Exposed for tests and for reducers that need full order
/// statistics.
void sort_columns(double* data, std::size_t n, std::size_t batch);

/// As above, but executed on a caller-chosen kernel table. The batched
/// engines pass the width-aware table they captured at construction
/// (simd_kernels_for_lanes) so the trim kernels run on the same backend
/// as the rest of the run; the table-less overloads use the process-wide
/// simd_kernels(). Results are bit-identical for every table (the SIMD
/// determinism contract), so the choice is purely a throughput knob.
void sort_columns(double* data, std::size_t n, std::size_t batch,
                  const SimdKernels& kernels);

/// Batched Trim (paper Section 4): for each replica r, drop the f smallest
/// and f largest of its n entries and write the midpoint of the surviving
/// extremes to out_value[r]. Optionally reports the surviving extremes
/// themselves (pass nullptr to skip). Destroys `data` (used as the
/// selection scratch). Requires n >= 2f + 1.
/// Bit-identical to trim() applied per replica.
void trim_batch(double* data, std::size_t n, std::size_t batch, std::size_t f,
                double* out_value, double* out_y_s = nullptr,
                double* out_y_l = nullptr);

/// Kernel-table overload (see sort_columns above).
void trim_batch(double* data, std::size_t n, std::size_t batch, std::size_t f,
                const SimdKernels& kernels, double* out_value,
                double* out_y_s = nullptr, double* out_y_l = nullptr);

/// Batched trimmed mean: mean of the surviving values after dropping the f
/// smallest and f largest, per replica. Destroys `data`. Requires
/// n >= 2f + 1. Bit-identical to trimmed_mean() applied per replica (the
/// surviving values are accumulated in ascending order, like the scalar
/// path).
void trimmed_mean_batch(double* data, std::size_t n, std::size_t batch,
                        std::size_t f, double* out_mean);

/// Kernel-table overload (see sort_columns above).
void trimmed_mean_batch(double* data, std::size_t n, std::size_t batch,
                        std::size_t f, const SimdKernels& kernels,
                        double* out_mean);

}  // namespace ftmao
