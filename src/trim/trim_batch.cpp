#include "trim/trim_batch.hpp"

#include <algorithm>
#include <array>
#include <vector>

#include "common/contracts.hpp"

namespace ftmao {

namespace {

// Batcher odd-even mergesort comparators for `n` elements. Generated for
// the next power of two with comparators touching indices >= n pruned:
// pruned positions behave as +infinity padding at the top of the array,
// which a compare-exchange can never move below position n, so the pruned
// network sorts the real prefix exactly.
std::vector<ComparatorPair> make_batcher_network(std::size_t n) {
  std::size_t pow2 = 1;
  while (pow2 < n) pow2 <<= 1;
  std::vector<ComparatorPair> pairs;
  for (std::size_t p = 1; p < pow2; p <<= 1) {
    for (std::size_t k = p; k >= 1; k >>= 1) {
      for (std::size_t j = k % p; j + k < pow2; j += 2 * k) {
        for (std::size_t i = 0; i < k && i + j + k < pow2; ++i) {
          if ((i + j) / (2 * p) == (i + j + k) / (2 * p) && i + j + k < n) {
            pairs.emplace_back(static_cast<std::uint16_t>(i + j),
                               static_cast<std::uint16_t>(i + j + k));
          }
        }
      }
    }
  }
  return pairs;
}

const std::array<std::vector<ComparatorPair>, kMaxSortingNetworkN + 1>&
network_table() {
  // Magic static: built once, thread-safe, ~2 KiB total.
  static const auto table = [] {
    std::array<std::vector<ComparatorPair>, kMaxSortingNetworkN + 1> t;
    for (std::size_t n = 2; n <= kMaxSortingNetworkN; ++n)
      t[n] = make_batcher_network(n);
    return t;
  }();
  return table;
}

// The network runs on the runtime-dispatched SIMD lane backend: one
// indirect call applies the whole comparator sequence, each comparator a
// branchless lanewise conditional swap of two contiguous slot rows. (The
// conditional swap — not min/max — is what keeps signed-zero multisets
// intact and all backends bit-identical; see simd/simd.hpp.)
void sort_columns_network(double* data, std::size_t n, std::size_t batch,
                          const SimdKernels& kernels) {
  const auto network = sorting_network(n);
  kernels.sort_network(data, batch, network.data(), network.size(), batch);
}

void sort_columns_fallback(double* data, std::size_t n, std::size_t batch) {
  std::vector<double> column(n);
  for (std::size_t r = 0; r < batch; ++r) {
    for (std::size_t s = 0; s < n; ++s) column[s] = data[s * batch + r];
    std::sort(column.begin(), column.end());
    for (std::size_t s = 0; s < n; ++s) data[s * batch + r] = column[s];
  }
}

}  // namespace

std::span<const ComparatorPair> sorting_network(std::size_t n) {
  FTMAO_EXPECTS(n >= 2 && n <= kMaxSortingNetworkN);
  return network_table()[n];
}

void sort_columns(double* data, std::size_t n, std::size_t batch) {
  sort_columns(data, n, batch, simd_kernels());
}

void sort_columns(double* data, std::size_t n, std::size_t batch,
                  const SimdKernels& kernels) {
  FTMAO_EXPECTS(data != nullptr || n * batch == 0);
  if (n < 2 || batch == 0) return;
  if (n <= kMaxSortingNetworkN) {
    sort_columns_network(data, n, batch, kernels);
  } else {
    sort_columns_fallback(data, n, batch);
  }
}

void trim_batch(double* data, std::size_t n, std::size_t batch, std::size_t f,
                double* out_value, double* out_y_s, double* out_y_l) {
  trim_batch(data, n, batch, f, simd_kernels(), out_value, out_y_s, out_y_l);
}

void trim_batch(double* data, std::size_t n, std::size_t batch, std::size_t f,
                const SimdKernels& kernels, double* out_value, double* out_y_s,
                double* out_y_l) {
  FTMAO_EXPECTS(n >= 2 * f + 1);
  FTMAO_EXPECTS(out_value != nullptr);
  if (batch == 0) return;

  if (n > kMaxSortingNetworkN) {
    // Scalar fallback: the exact trim() selection per replica.
    std::vector<double> column(n);
    for (std::size_t r = 0; r < batch; ++r) {
      for (std::size_t s = 0; s < n; ++s) column[s] = data[s * batch + r];
      auto ys_it = column.begin() + static_cast<std::ptrdiff_t>(f);
      std::nth_element(column.begin(), ys_it, column.end());
      const double y_s = *ys_it;
      auto yl_it = column.begin() + static_cast<std::ptrdiff_t>(n - 1 - f);
      std::nth_element(ys_it, yl_it, column.end());
      const double y_l = *yl_it;
      out_value[r] = y_s + (y_l - y_s) / 2.0;
      if (out_y_s) out_y_s[r] = y_s;
      if (out_y_l) out_y_l[r] = y_l;
    }
    return;
  }

  if (n >= 2) sort_columns_network(data, n, batch, kernels);
  const double* ys_row = data + f * batch;
  const double* yl_row = data + (n - 1 - f) * batch;
  kernels.trim_midpoint(ys_row, yl_row, out_value, batch);
  if (out_y_s) std::copy(ys_row, ys_row + batch, out_y_s);
  if (out_y_l) std::copy(yl_row, yl_row + batch, out_y_l);
}

void trimmed_mean_batch(double* data, std::size_t n, std::size_t batch,
                        std::size_t f, double* out_mean) {
  trimmed_mean_batch(data, n, batch, f, simd_kernels(), out_mean);
}

void trimmed_mean_batch(double* data, std::size_t n, std::size_t batch,
                        std::size_t f, const SimdKernels& kernels,
                        double* out_mean) {
  FTMAO_EXPECTS(n >= 2 * f + 1);
  FTMAO_EXPECTS(out_mean != nullptr);
  if (batch == 0) return;

  sort_columns(data, n, batch, kernels);
  const std::size_t surviving = n - 2 * f;
  const double inv = static_cast<double>(surviving);
  for (std::size_t r = 0; r < batch; ++r) out_mean[r] = 0.0;
  // Ascending-row accumulation = the scalar path's sorted-order sum, so
  // the floating-point result matches trimmed_mean() bit for bit (the
  // lane kernels keep the per-replica operation order; only the replica
  // dimension is vectorized).
  for (std::size_t s = f; s < n - f; ++s)
    kernels.accumulate_rows(out_mean, data + s * batch, batch);
  kernels.divide_rows(out_mean, inv, batch);
}

}  // namespace ftmao
