#pragma once

// The paper's Trim function (Section 4):
//
//   Trim(D): sort the multiset D (|D| >= 2f+1), drop the f smallest and f
//   largest values, and return the midpoint (y_s + y_l)/2 of the extremes
//   of what remains.
//
// Also provides the trimmed mean (a common alternative robust reducer,
// used in ablations) and the plain mean (crash-model reducer, Section 7).

#include <cstddef>
#include <span>
#include <vector>

namespace ftmao {

/// Full diagnostic output of one trim: the returned value plus the
/// surviving extremes (y_s, y_l in the paper).
struct TrimResult {
  double value = 0.0;  ///< (y_s + y_l) / 2
  double y_s = 0.0;    ///< smallest surviving value
  double y_l = 0.0;    ///< largest surviving value
};

/// Applies Trim with parameter f. Requires values.size() >= 2f + 1.
TrimResult trim(std::span<const double> values, std::size_t f);

/// Scratch-buffer overload for hot loops: the selection happens inside
/// `scratch` (resized/overwritten as needed), so a caller that reuses the
/// same buffer across rounds performs no allocation after warm-up.
TrimResult trim(std::span<const double> values, std::size_t f,
                std::vector<double>& scratch);

/// Convenience: just the trimmed midpoint.
double trim_value(std::span<const double> values, std::size_t f);

/// Allocation-free variant of trim_value (see the trim scratch overload).
double trim_value(std::span<const double> values, std::size_t f,
                  std::vector<double>& scratch);

/// Mean of the surviving values after dropping f smallest and f largest
/// (trimmed mean). Requires values.size() >= 2f + 1.
double trimmed_mean(std::span<const double> values, std::size_t f);

/// Allocation-free variant of trimmed_mean (see the trim scratch overload).
double trimmed_mean(std::span<const double> values, std::size_t f,
                    std::vector<double>& scratch);

/// Plain arithmetic mean (crash-fault reducer: "no trimming at all").
double mean(std::span<const double> values);

/// Midpoint of min and max without removal — Trim with f = 0.
double minmax_midpoint(std::span<const double> values);

}  // namespace ftmao
