#include "trim/trim.hpp"

#include <algorithm>
#include <numeric>

#include "common/contracts.hpp"

namespace ftmao {

TrimResult trim(std::span<const double> values, std::size_t f,
                std::vector<double>& scratch) {
  FTMAO_EXPECTS(values.size() >= 2 * f + 1);
  scratch.assign(values.begin(), values.end());
  // Only the f-th and (size-1-f)-th order statistics matter; partial
  // selection keeps this O(n) rather than O(n log n).
  auto ys_it = scratch.begin() + static_cast<std::ptrdiff_t>(f);
  std::nth_element(scratch.begin(), ys_it, scratch.end());
  const double y_s = *ys_it;
  auto yl_it = scratch.begin() + static_cast<std::ptrdiff_t>(scratch.size() - 1 - f);
  std::nth_element(ys_it, yl_it, scratch.end());
  const double y_l = *yl_it;

  FTMAO_ENSURES(y_s <= y_l);
  return TrimResult{y_s + (y_l - y_s) / 2.0, y_s, y_l};
}

TrimResult trim(std::span<const double> values, std::size_t f) {
  std::vector<double> scratch;
  return trim(values, f, scratch);
}

double trim_value(std::span<const double> values, std::size_t f) {
  return trim(values, f).value;
}

double trim_value(std::span<const double> values, std::size_t f,
                  std::vector<double>& scratch) {
  return trim(values, f, scratch).value;
}

double trimmed_mean(std::span<const double> values, std::size_t f,
                    std::vector<double>& scratch) {
  FTMAO_EXPECTS(values.size() >= 2 * f + 1);
  scratch.assign(values.begin(), values.end());
  std::sort(scratch.begin(), scratch.end());
  const auto first = scratch.begin() + static_cast<std::ptrdiff_t>(f);
  const auto last = scratch.end() - static_cast<std::ptrdiff_t>(f);
  const double sum = std::accumulate(first, last, 0.0);
  return sum / static_cast<double>(last - first);
}

double trimmed_mean(std::span<const double> values, std::size_t f) {
  std::vector<double> scratch;
  return trimmed_mean(values, f, scratch);
}

double mean(std::span<const double> values) {
  FTMAO_EXPECTS(!values.empty());
  const double sum = std::accumulate(values.begin(), values.end(), 0.0);
  return sum / static_cast<double>(values.size());
}

double minmax_midpoint(std::span<const double> values) {
  FTMAO_EXPECTS(!values.empty());
  const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  return *lo + (*hi - *lo) / 2.0;
}

}  // namespace ftmao
