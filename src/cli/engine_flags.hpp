#pragma once

// Shared engine-execution and result-cache CLI flags. Every tool that
// drives the simulation engines (ftmao_sweep, ftmao_certify,
// ftmao_shardsweep, ftmao, the benches) accepts the same --threads /
// --batch / --scalar / --isa quartet with the same semantics and the
// same identity promise; the sweep-family tools add --cache-dir /
// --cache-mem-mb. Declaring them here keeps the help texts, defaults,
// and wiring from drifting apart per binary.

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "cli/args.hpp"

namespace ftmao {
class ResultCache;  // cache/result_cache.hpp
}

namespace ftmao::cli {

/// Appends `extra` to `specs` (parser-construction helper).
void append_flags(std::vector<FlagSpec>& specs, std::vector<FlagSpec> extra);

/// The --isa flag alone (tools that run a single scenario want backend
/// control without the batching knobs). `subject` names the artifact the
/// identity promise covers ("output", "report").
FlagSpec isa_flag_spec(const std::string& subject);

/// The execution-strategy quartet: --threads, --batch, --scalar, --isa.
/// `subject` as above; `unit` names what one batched-engine call groups
/// ("seeds", "attacks") and what the scalar engine runs one at a time.
std::vector<FlagSpec> engine_flag_specs(const std::string& subject,
                                        const std::string& unit);

/// The result-cache pair: --cache-dir (persistent tier root; empty =
/// caching off) and --cache-mem-mb (in-memory LRU budget).
std::vector<FlagSpec> cache_flag_specs();

/// Reads --megabatch: "on" (the default) keeps cross-cell megabatch
/// packing live, "off" runs the per-cell batched baseline (the A/B
/// lever). Throws on any other value. The flag never changes output
/// bytes, only how work is grouped into batched-engine calls.
bool megabatch_flag(const ArgParser& parser);

/// Applies --isa: "auto" keeps width-aware auto-dispatch live (the
/// engines pick the widest backend whose register the lane count can
/// mostly fill); any explicit name forces that backend everywhere.
/// Returns false (after printing to `err`) when the forced backend is
/// unsupported on this machine/build.
bool apply_isa_flag(const ArgParser& parser, std::ostream& err);

/// The ResultCache configured by the cache flags, or nullptr when
/// --cache-dir is empty (a one-shot process gains nothing from a private
/// in-memory cache, so no directory means no caching).
std::unique_ptr<ResultCache> cache_from(const ArgParser& parser);

}  // namespace ftmao::cli
