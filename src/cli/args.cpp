#include "cli/args.hpp"

#include <sstream>
#include <stdexcept>

#include "common/contracts.hpp"

namespace ftmao::cli {

ArgParser::ArgParser(std::vector<FlagSpec> specs) : specs_(std::move(specs)) {
  for (const auto& spec : specs_) FTMAO_EXPECTS(!spec.name.empty());
}

const FlagSpec* ArgParser::find_spec(const std::string& name) const {
  for (const auto& spec : specs_) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

std::optional<std::string> ArgParser::parse(
    const std::vector<std::string>& args) {
  values_.clear();
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      return "positional arguments are not accepted: '" + arg + "'";
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    const FlagSpec* spec = find_spec(name);
    if (spec == nullptr) return "unknown flag '--" + name + "'";
    if (!has_value) {
      const bool next_is_value =
          i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0;
      if (spec->boolean && !next_is_value) {
        value = "true";
      } else if (next_is_value) {
        value = args[++i];
      } else {
        return "flag '--" + name + "' requires a value";
      }
    }
    if (values_.count(name) != 0) return "duplicate flag '--" + name + "'";
    values_[name] = value;
  }
  return std::nullopt;
}

bool ArgParser::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string ArgParser::get(const std::string& name) const {
  if (const auto it = values_.find(name); it != values_.end()) return it->second;
  const FlagSpec* spec = find_spec(name);
  FTMAO_EXPECTS(spec != nullptr);
  return spec->default_value;
}

double ArgParser::get_double(const std::string& name) const {
  const std::string v = get(name);
  try {
    std::size_t consumed = 0;
    const double out = std::stod(v, &consumed);
    if (consumed != v.size()) throw std::invalid_argument(v);
    return out;
  } catch (const std::exception&) {
    throw ContractViolation("flag --" + name + " expects a number, got '" + v + "'");
  }
}

long ArgParser::get_int(const std::string& name) const {
  const std::string v = get(name);
  try {
    std::size_t consumed = 0;
    const long out = std::stol(v, &consumed);
    if (consumed != v.size()) throw std::invalid_argument(v);
    return out;
  } catch (const std::exception&) {
    throw ContractViolation("flag --" + name + " expects an integer, got '" + v + "'");
  }
}

bool ArgParser::get_bool(const std::string& name) const {
  const std::string v = get(name);
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no" || v.empty()) return false;
  throw ContractViolation("flag --" + name + " expects a boolean, got '" + v + "'");
}

std::string ArgParser::help_text() const {
  std::ostringstream os;
  for (const auto& spec : specs_) {
    os << "  --" << spec.name;
    if (!spec.default_value.empty()) os << " (default: " << spec.default_value << ")";
    os << "\n      " << spec.help << "\n";
  }
  return os.str();
}

}  // namespace ftmao::cli
