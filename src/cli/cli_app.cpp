#include "cli/cli_app.hpp"

#include <ostream>

#include <fstream>
#include <sstream>

#include "cli/args.hpp"
#include "cli/engine_flags.hpp"
#include "common/contracts.hpp"
#include "common/table.hpp"
#include "sim/async_runner.hpp"
#include "common/rng.hpp"
#include "sim/crash_runner.hpp"
#include "sim/runner.hpp"
#include "graph/graph_runner.hpp"
#include "graph/robustness.hpp"
#include "graph/topology.hpp"
#include "sim/scenario_io.hpp"

namespace ftmao::cli {

namespace {

ArgParser make_parser() {
  std::vector<FlagSpec> specs = {
      {"algorithm", "sbg | dgd | local | async | graph | crash", "sbg", false},
      {"n", "total number of agents", "7", false},
      {"f", "fault bound (n > 3f; async needs n > 5f)", "2", false},
      {"attack",
       "none | silent | fixed | split-brain | hull-edge-up | hull-edge-down | "
       "noise | sign-flip | pull | flip-flop | delayed-strike",
       "split-brain", false},
      {"rounds", "iterations to run", "5000", false},
      {"seed", "rng seed (determinism)", "1", false},
      {"spread", "width of the cost-optima layout", "8", false},
      {"step", "harmonic | power | constant", "harmonic", false},
      {"step-scale", "step size scale", "1", false},
      {"step-exp", "exponent for --step power", "0.75", false},
      {"constraint-lo", "projection interval lower bound (with -hi)", "", false},
      {"constraint-hi", "projection interval upper bound (with -lo)", "", false},
      {"target", "pull attack target", "-30", false},
      {"magnitude", "attack state magnitude", "100", false},
      {"gradient-magnitude", "attack gradient magnitude", "10", false},
      {"flip-period", "rounds per flip-flop phase", "1", false},
      {"activation-round", "delayed-strike activation round", "1", false},
      {"consistent", "wrap adversary in reliable-broadcast restriction", "false",
       true},
      {"drop", "honest link-loss probability per message", "0", false},
      {"topology",
       "graph algorithm: complete | ring:<k> | barbell:<bridges> | random:<d>",
       "ring:2", false},
      {"crash-at", "crash algorithm: comma list of agent@round", "", false},
      {"scenario", "load a scenario file (overrides the scenario flags)", "",
       false},
      {"save-scenario", "write the effective scenario to a file and exit", "",
       false},
      {"csv", "emit per-round CSV instead of the summary", "false", true},
      {"audit", "run per-iteration Lemma 2 witness audits", "false", true},
      {"help", "show usage", "false", true},
  };
  specs.push_back(isa_flag_spec("output"));
  return ArgParser(std::move(specs));
}

Scenario scenario_from(const ArgParser& parser) {
  if (parser.has("scenario")) {
    std::ifstream file(parser.get("scenario"));
    if (!file) {
      throw ContractViolation("cannot open scenario file '" +
                              parser.get("scenario") + "'");
    }
    return load_scenario(file);
  }
  const auto n = static_cast<std::size_t>(parser.get_int("n"));
  const auto f = static_cast<std::size_t>(parser.get_int("f"));
  Scenario s = make_standard_scenario(
      n, f, parser.get_double("spread"), parse_attack_kind(parser.get("attack")),
      static_cast<std::size_t>(parser.get_int("rounds")),
      static_cast<std::uint64_t>(parser.get_int("seed")));
  s.step.kind = parse_step_kind(parser.get("step"));
  s.step.scale = parser.get_double("step-scale");
  s.step.exponent = parser.get_double("step-exp");
  s.attack.target = parser.get_double("target");
  s.attack.state_magnitude = parser.get_double("magnitude");
  s.attack.gradient_magnitude = parser.get_double("gradient-magnitude");
  s.attack.consistent = parser.get_bool("consistent");
  s.attack.flip_period = static_cast<std::size_t>(parser.get_int("flip-period"));
  s.attack.activation_round =
      static_cast<std::size_t>(parser.get_int("activation-round"));
  s.drop_probability = parser.get_double("drop");
  if (parser.has("constraint-lo") || parser.has("constraint-hi")) {
    if (!(parser.has("constraint-lo") && parser.has("constraint-hi")))
      throw ContractViolation(
          "--constraint-lo and --constraint-hi must be given together");
    s.constraint = Interval(parser.get_double("constraint-lo"),
                            parser.get_double("constraint-hi"));
  }
  return s;
}

void print_summary(const RunMetrics& m, std::ostream& out) {
  Table table({"metric", "value"});
  table.row().add("valid optima set Y").add(
      "[" + format_double(m.optima.lo(), 6) + ", " +
      format_double(m.optima.hi(), 6) + "]");
  table.row().add("final disagreement").add(m.final_disagreement(), 6);
  table.row().add("final max dist to Y").add(m.final_max_dist(), 6);
  table.row().add("final state (first agent)").add(m.final_states.front(), 6);
  if (m.state_witness.checks > 0) {
    table.row().add("witness audits").add(m.state_witness.checks +
                                          m.gradient_witness.checks);
    table.row().add("witness failures").add(m.state_witness.failures +
                                            m.gradient_witness.failures);
  }
  table.print(out);
}

void print_csv(const RunMetrics& m, std::ostream& out) {
  Table csv({"t", "disagreement", "max_dist_to_y", "max_projection_error"});
  for (std::size_t t = 0; t < m.disagreement.size(); ++t) {
    csv.row()
        .add(t)
        .add(m.disagreement[t], 8)
        .add(m.max_dist_to_y[t], 8)
        .add(m.max_projection_error[t], 8);
  }
  csv.print_csv(out);
}

int run_sync_algorithm(const ArgParser& parser, std::ostream& out) {
  const Scenario s = scenario_from(parser);
  if (parser.has("save-scenario")) {
    std::ofstream file(parser.get("save-scenario"));
    if (!file) {
      throw ContractViolation("cannot write scenario file '" +
                              parser.get("save-scenario") + "'");
    }
    save_scenario(s, file);
    out << "scenario written to " << parser.get("save-scenario") << "\n";
    return 0;
  }
  const std::string algorithm = parser.get("algorithm");
  RunOptions options;
  options.audit_witnesses = parser.get_bool("audit");

  RunMetrics metrics;
  if (algorithm == "sbg") {
    metrics = run_sbg(s, options);
  } else if (algorithm == "dgd") {
    metrics = run_dgd(s);
  } else if (algorithm == "local") {
    metrics = run_local_gd(s);
  } else {
    throw ContractViolation("unknown algorithm '" + algorithm + "'");
  }
  if (parser.get_bool("csv")) {
    print_csv(metrics, out);
  } else {
    print_summary(metrics, out);
  }
  return 0;
}

Topology topology_from(const std::string& spec, std::size_t n,
                       std::uint64_t seed) {
  if (spec == "complete") return make_complete(n);
  const auto colon = spec.find(':');
  if (colon != std::string::npos) {
    const std::string kind = spec.substr(0, colon);
    const auto param = static_cast<std::size_t>(
        std::stoul(spec.substr(colon + 1)));
    if (kind == "ring") return make_ring_lattice(n, param);
    if (kind == "barbell") return make_barbell(n / 2, param);
    if (kind == "random") {
      Rng rng(seed);
      return make_random_out_regular(n, param, rng);
    }
  }
  throw ContractViolation("unknown topology '" + spec + "'");
}

int run_graph_algorithm(const ArgParser& parser, std::ostream& out) {
  const Scenario base = scenario_from(parser);
  GraphScenario s;
  s.topology = topology_from(parser.get("topology"), base.n, base.seed);
  s.f = base.f;
  s.faulty = base.faulty;
  s.functions = base.functions;
  s.initial_states = base.initial_states;
  s.attack = base.attack;
  s.step = base.step;
  s.rounds = base.rounds;
  s.seed = base.seed;
  const GraphRunMetrics m = run_graph_sbg(s);

  Table table({"metric", "value"});
  table.row().add("topology").add(parser.get("topology"));
  table.row().add("min in-degree").add(s.topology.min_in_degree());
  table.row().add("robustness r").add(max_robustness(s.topology));
  table.row().add("needs (2f+1)-robust").add(required_robustness(s.f));
  table.row().add("final disagreement").add(m.disagreement.back(), 6);
  table.row().add("final dist to complete-net Y").add(m.max_dist_to_y.back(), 6);
  table.print(out);
  return 0;
}

int run_crash_algorithm(const ArgParser& parser, std::ostream& out) {
  const Scenario base = scenario_from(parser);
  CrashScenario s;
  s.n = base.n;
  s.functions = base.functions;
  s.initial_states = base.initial_states;
  s.step = base.step;
  s.rounds = base.rounds;
  std::istringstream is(parser.get("crash-at"));
  std::string token;
  while (std::getline(is, token, ',')) {
    const auto at = token.find('@');
    if (at == std::string::npos)
      throw ContractViolation("--crash-at expects agent@round entries");
    s.crashes.push_back({std::stoul(token.substr(0, at)),
                         std::stoul(token.substr(at + 1)), 0});
  }
  const CrashRunMetrics m = run_crash(s);
  Table table({"metric", "value"});
  table.row().add("survivors").add(m.final_states.size());
  table.row().add("final consensus").add(m.final_states.front(), 6);
  table.row().add("(17)-optimum interval").add(
      "[" + format_double(m.optima.lo(), 6) + ", " +
      format_double(m.optima.hi(), 6) + "]");
  table.row().add("final disagreement").add(m.disagreement.back(), 6);
  table.row().add("final dist to (17) set").add(m.max_dist_to_y.back(), 6);
  table.print(out);
  return 0;
}

int run_async_algorithm(const ArgParser& parser, std::ostream& out) {
  AsyncScenario s;
  s.n = static_cast<std::size_t>(parser.get_int("n"));
  s.f = static_cast<std::size_t>(parser.get_int("f"));
  for (std::size_t i = s.n - s.f; i < s.n; ++i) s.faulty.push_back(i);
  const Scenario base = scenario_from(parser);
  s.functions = base.functions;
  s.initial_states = base.initial_states;
  s.attack = base.attack;
  s.step = base.step;
  s.rounds = base.rounds;
  s.seed = base.seed;
  const AsyncRunMetrics m = run_async_sbg(s);

  if (parser.get_bool("csv")) {
    Table csv({"t", "disagreement", "max_dist_to_y"});
    for (std::size_t t = 0; t < m.disagreement.size(); ++t)
      csv.row().add(t).add(m.disagreement[t], 8).add(m.max_dist_to_y[t], 8);
    csv.print_csv(out);
  } else {
    Table table({"metric", "value"});
    table.row().add("final disagreement").add(m.disagreement.back(), 6);
    table.row().add("final max dist to Y").add(m.max_dist_to_y.back(), 6);
    table.row().add("virtual time").add(m.virtual_time, 6);
    table.print(out);
  }
  return 0;
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  ArgParser parser = make_parser();
  if (const auto error = parser.parse(args)) {
    err << "error: " << *error << "\n\nusage:\n" << parser.help_text();
    return 2;
  }
  if (parser.get_bool("help")) {
    out << "ftmao — fault-tolerant multi-agent optimization simulator\n\n"
        << parser.help_text();
    return 0;
  }
  try {
    if (!apply_isa_flag(parser, err)) return 2;
    if (parser.get("algorithm") == "async") return run_async_algorithm(parser, out);
    if (parser.get("algorithm") == "graph") return run_graph_algorithm(parser, out);
    if (parser.get("algorithm") == "crash") return run_crash_algorithm(parser, out);
    return run_sync_algorithm(parser, out);
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace ftmao::cli
