#include "cli/engine_flags.hpp"

#include <ostream>
#include <utility>

#include "cache/result_cache.hpp"
#include "common/contracts.hpp"
#include "simd/simd.hpp"

namespace ftmao::cli {

void append_flags(std::vector<FlagSpec>& specs, std::vector<FlagSpec> extra) {
  for (FlagSpec& spec : extra) specs.push_back(std::move(spec));
}

FlagSpec isa_flag_spec(const std::string& subject) {
  return {"isa",
          "SIMD lane backend: auto | scalar | sse2 | avx2 | avx512; " +
              subject + " is identical for every value",
          "auto", false};
}

std::vector<FlagSpec> engine_flag_specs(const std::string& subject,
                                        const std::string& unit) {
  return {
      {"threads",
       "worker threads (0 = all cores); " + subject +
           " is identical for every value",
       "1", false},
      {"batch",
       unit + " per batched-engine call (0 = one full batch); " + subject +
           " is identical for every value",
       "0", false},
      {"scalar",
       "force the scalar reference engine (one run per " + unit + ")", "false",
       true},
      {"megabatch",
       "on | off: lane-aligned cross-cell megabatch packing; " + subject +
           " is identical either way (off = per-cell baseline)",
       "on", false},
      isa_flag_spec(subject),
  };
}

bool megabatch_flag(const ArgParser& parser) {
  const std::string value = parser.get("megabatch");
  if (value == "on") return true;
  if (value == "off") return false;
  throw ContractViolation("--megabatch expects on|off, got '" + value + "'");
}

std::vector<FlagSpec> cache_flag_specs() {
  return {
      {"cache-dir",
       "persistent result-cache directory (created on demand; empty = "
       "caching off); corrupt or stale records degrade to recomputation",
       "", false},
      {"cache-mem-mb", "in-memory result-cache LRU budget, MiB", "256",
       false},
  };
}

bool apply_isa_flag(const ArgParser& parser, std::ostream& err) {
  if (parser.get("isa") == "auto") return true;
  const SimdIsa isa = parse_simd_isa(parser.get("isa"));
  if (!simd_select(isa)) {
    err << "error: ISA '" << simd_isa_name(isa)
        << "' is not supported on this machine/build\n";
    return false;
  }
  return true;
}

std::unique_ptr<ResultCache> cache_from(const ArgParser& parser) {
  const std::string dir = parser.get("cache-dir");
  if (dir.empty()) return nullptr;
  CacheConfig config;
  config.dir = dir;
  config.max_memory_bytes =
      static_cast<std::size_t>(parser.get_int("cache-mem-mb")) << 20;
  return std::make_unique<ResultCache>(std::move(config));
}

}  // namespace ftmao::cli
