#pragma once

// The ftmao command-line experiment driver: builds a scenario from flags,
// runs the chosen algorithm, and prints a summary table or CSV series.
// Kept as a library so the flag->scenario translation is unit-testable;
// apps/ftmao_cli.cpp is a thin main().

#include <iosfwd>
#include <string>
#include <vector>

namespace ftmao::cli {

/// Runs the whole tool. Returns the process exit code.
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace ftmao::cli
