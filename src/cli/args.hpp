#pragma once

// Minimal command-line flag parser for the ftmao tool. Flags are
// "--name value" or "--name=value"; boolean flags may omit the value.
// Unknown flags are an error (typos should not be silently ignored in an
// experiment driver).

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ftmao::cli {

/// Declaration of one accepted flag.
struct FlagSpec {
  std::string name;         ///< without the leading "--"
  std::string help;
  std::string default_value;  ///< shown in help; "" = required-if-used
  bool boolean = false;       ///< value optional, presence = "true"
};

class ArgParser {
 public:
  explicit ArgParser(std::vector<FlagSpec> specs);

  /// Parses argv (excluding argv[0]). Returns an error message on
  /// failure, empty optional on success.
  std::optional<std::string> parse(const std::vector<std::string>& args);

  bool has(const std::string& name) const;
  std::string get(const std::string& name) const;  ///< value or default
  double get_double(const std::string& name) const;
  long get_int(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  std::string help_text() const;

 private:
  const FlagSpec* find_spec(const std::string& name) const;

  std::vector<FlagSpec> specs_;
  std::map<std::string, std::string> values_;
};

}  // namespace ftmao::cli
