#include "consensus/rbc_sbg.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "trim/trim.hpp"

namespace ftmao {

void RbcSbgConfig::validate() const {
  FTMAO_EXPECTS(n > 3 * f);
  FTMAO_EXPECTS(quorum() >= 2 * f + 1);  // trim precondition
  FTMAO_EXPECTS(max_rounds >= 1);
}

RbcSbgNode::RbcSbgNode(AgentId id, ScalarFunctionPtr cost, double initial_state,
                       const StepSchedule& schedule, const RbcSbgConfig& config)
    : id_(id),
      cost_(std::move(cost)),
      state_(initial_state),
      schedule_(&schedule),
      config_(config),
      rbc_(config.n, config.f, id) {
  FTMAO_EXPECTS(cost_ != nullptr);
  config_.validate();
  history_.push_back(state_);
}

std::vector<Unicast<RbcSbgMessage>> RbcSbgNode::to_everyone(
    std::vector<RbcSbgMessage> msgs) const {
  std::vector<Unicast<RbcSbgMessage>> out;
  out.reserve(msgs.size() * config_.n);
  for (const auto& msg : msgs) {
    for (std::uint32_t k = 0; k < config_.n; ++k) {
      out.push_back({AgentId{k}, msg});
    }
  }
  return out;
}

std::vector<Unicast<RbcSbgMessage>> RbcSbgNode::boot() {
  return to_everyone(
      rbc_.broadcast(1, RbcSbgTuple{state_, cost_->derivative(state_)}));
}

std::vector<Unicast<RbcSbgMessage>> RbcSbgNode::on_receive(
    AgentId from, const RbcSbgMessage& msg) {
  std::vector<RbcSbgMessage> out = rbc_.on_message(from, msg);
  collect_new_deliveries();
  // Advancing can cascade: deliveries buffered for future rounds may
  // satisfy several quorums at once.
  for (std::vector<RbcSbgMessage> next = maybe_advance(); !next.empty();
       next = maybe_advance()) {
    out.insert(out.end(), next.begin(), next.end());
  }
  return to_everyone(std::move(out));
}

void RbcSbgNode::collect_new_deliveries() {
  // RbcProcess reports each delivery exactly once: O(1) per message
  // instead of polling every (origin, tag) pair.
  for (const RbcInstanceId& inst : rbc_.take_new_deliveries()) {
    if (inst.tag < round_.value || inst.tag > config_.max_rounds) continue;
    if (const auto value = rbc_.delivered(inst)) {
      delivered_[inst.tag].emplace(inst.origin, *value);
    }
  }
}

std::vector<RbcSbgMessage> RbcSbgNode::maybe_advance() {
  const auto it = delivered_.find(round_.value);
  if (it == delivered_.end() || it->second.size() < config_.quorum()) return {};

  std::vector<double> states, gradients;
  states.reserve(it->second.size());
  gradients.reserve(it->second.size());
  for (const auto& [origin, tuple] : it->second) {
    states.push_back(tuple.first);
    gradients.push_back(tuple.second);
  }
  const double lambda = schedule_->at(round_.value - 1);
  state_ = trim_value(states, config_.f) -
           lambda * trim_value(gradients, config_.f);
  history_.push_back(state_);
  delivered_.erase(it);
  round_ = round_.next();
  if (round_.value > config_.max_rounds) return {};
  return rbc_.broadcast(round_.value,
                        RbcSbgTuple{state_, cost_->derivative(state_)});
}

// ------------------------------------------------------ EquivocatingRbcByz

EquivocatingRbcByz::EquivocatingRbcByz(AgentId id, std::size_t n,
                                       std::size_t max_rounds,
                                       RbcSbgTuple value_even,
                                       RbcSbgTuple value_odd)
    : id_(id), n_(n), max_rounds_(max_rounds), even_(value_even), odd_(value_odd) {}

std::vector<Unicast<RbcSbgMessage>> EquivocatingRbcByz::equivocate(
    std::uint32_t tag) {
  if (tag == 0 || tag > max_rounds_ || !tags_sent_.insert(tag).second) return {};
  std::vector<Unicast<RbcSbgMessage>> out;
  for (std::uint32_t k = 0; k < n_; ++k) {
    const RbcSbgTuple& v = k % 2 == 0 ? even_ : odd_;
    out.push_back({AgentId{k}, RbcSbgMessage{RbcKind::Init, {id_, tag}, v}});
  }
  return out;
}

std::vector<Unicast<RbcSbgMessage>> EquivocatingRbcByz::boot() {
  return equivocate(1);
}

std::vector<Unicast<RbcSbgMessage>> EquivocatingRbcByz::on_receive(
    AgentId, const RbcSbgMessage& msg) {
  // Joins each round as soon as it observes any traffic for its tag.
  return equivocate(msg.instance.tag);
}

// ---------------------------------------------------------------- runner

RbcSbgRunResult run_rbc_sbg(const RbcSbgConfig& config,
                            const std::vector<ScalarFunctionPtr>& honest_costs,
                            const std::vector<double>& honest_initial,
                            std::size_t byzantine_count,
                            const StepSchedule& schedule, DelayModel& delays) {
  config.validate();
  FTMAO_EXPECTS(honest_costs.size() + byzantine_count == config.n);
  FTMAO_EXPECTS(honest_initial.size() == honest_costs.size());
  FTMAO_EXPECTS(byzantine_count <= config.f);

  ProtoEngine<RbcSbgMessage> engine(delays);
  std::vector<std::unique_ptr<RbcSbgNode>> honest;
  std::vector<std::unique_ptr<EquivocatingRbcByz>> byz;
  for (std::size_t i = 0; i < honest_costs.size(); ++i) {
    honest.push_back(std::make_unique<RbcSbgNode>(
        AgentId{static_cast<std::uint32_t>(i)}, honest_costs[i],
        honest_initial[i], schedule, config));
    engine.add_node(AgentId{static_cast<std::uint32_t>(i)}, honest.back().get());
  }
  for (std::size_t b = 0; b < byzantine_count; ++b) {
    const AgentId id{static_cast<std::uint32_t>(honest_costs.size() + b)};
    byz.push_back(std::make_unique<EquivocatingRbcByz>(
        id, config.n, config.max_rounds, RbcSbgTuple{60.0, 6.0},
        RbcSbgTuple{-60.0, -6.0}));
    engine.add_node(id, byz.back().get());
  }

  RbcSbgRunResult result;
  result.virtual_time = engine.run([&] {
    for (const auto& node : honest) {
      if (node->current_round().value <= config.max_rounds) return false;
    }
    return true;
  });

  std::size_t common = config.max_rounds + 1;
  for (const auto& node : honest)
    common = std::min(common, node->history().size());
  for (std::size_t t = 0; t < common; ++t) {
    double lo = honest.front()->history()[t];
    double hi = lo;
    for (const auto& node : honest) {
      lo = std::min(lo, node->history()[t]);
      hi = std::max(hi, node->history()[t]);
    }
    result.disagreement.push(hi - lo);
  }
  for (const auto& node : honest) result.final_states.push_back(node->state());
  result.messages_delivered = engine.messages_delivered();
  return result;
}

}  // namespace ftmao
