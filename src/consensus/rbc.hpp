#pragma once

// Bracha-style asynchronous reliable broadcast (RBC) — the primitive the
// paper's Section 7 suggests combining with SBG to get n > 3f resilience
// in asynchronous systems (via [1]-style protocols).
//
// For each (origin, tag) instance:
//   * origin broadcasts INIT(v);
//   * on INIT(v) from the origin: broadcast ECHO(v) (once);
//   * on ceil((n+f+1)/2) matching ECHO(v): broadcast READY(v) (once);
//   * on f+1 matching READY(v): broadcast READY(v) (amplification, once);
//   * on 2f+1 matching READY(v): deliver v.
//
// With n > 3f this guarantees validity (honest origin's value is
// delivered), agreement (no two honest deliver different values for the
// same instance), and totality (if one honest delivers, all eventually
// do). RbcProcess is the per-participant state machine, transport-
// agnostic: feed it messages, collect messages to send.

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/types.hpp"

namespace ftmao {

enum class RbcKind : std::uint8_t { Init, Echo, Ready };

/// Identifies one broadcast instance: who is broadcasting, with which tag
/// (SBG uses the round number as tag).
struct RbcInstanceId {
  AgentId origin;
  std::uint32_t tag = 0;

  friend auto operator<=>(const RbcInstanceId&, const RbcInstanceId&) = default;
};

template <typename V>
struct RbcMessage {
  RbcKind kind = RbcKind::Init;
  RbcInstanceId instance;
  V value{};
};

/// One participant's RBC state across all instances. V must be
/// equality-comparable and ordered (used as a map key for vote counting).
template <typename V>
class RbcProcess {
 public:
  RbcProcess(std::size_t n, std::size_t f, AgentId self)
      : n_(n), f_(f), self_(self) {}

  std::size_t echo_quorum() const { return (n_ + f_) / 2 + 1; }
  std::size_t ready_amplify() const { return f_ + 1; }
  std::size_t deliver_quorum() const { return 2 * f_ + 1; }

  /// Starts broadcasting `value` under (self, tag). Returns messages to
  /// send to ALL agents (including self).
  std::vector<RbcMessage<V>> broadcast(std::uint32_t tag, const V& value) {
    return {RbcMessage<V>{RbcKind::Init, {self_, tag}, value}};
  }

  /// Feeds one received message; returns messages to send to all agents.
  /// Duplicate/conflicting messages from the same sender are ignored per
  /// protocol (one INIT per origin, one ECHO/READY per sender per
  /// instance).
  std::vector<RbcMessage<V>> on_message(AgentId from, const RbcMessage<V>& msg) {
    Instance& inst = instances_[msg.instance];
    std::vector<RbcMessage<V>> out;
    switch (msg.kind) {
      case RbcKind::Init:
        // Only the origin's own INIT counts.
        if (from != msg.instance.origin || inst.echo_sent) break;
        inst.echo_sent = true;
        out.push_back({RbcKind::Echo, msg.instance, msg.value});
        break;
      case RbcKind::Echo:
        if (!inst.echoers.insert(from).second) break;  // one echo per sender
        if (++inst.echo_votes[msg.value] >= echo_quorum() && !inst.ready_sent) {
          inst.ready_sent = true;
          out.push_back({RbcKind::Ready, msg.instance, msg.value});
        }
        break;
      case RbcKind::Ready:
        if (!inst.readiers.insert(from).second) break;
        const std::size_t votes = ++inst.ready_votes[msg.value];
        if (votes >= ready_amplify() && !inst.ready_sent) {
          inst.ready_sent = true;
          out.push_back({RbcKind::Ready, msg.instance, msg.value});
        }
        if (votes >= deliver_quorum() && !inst.delivered) {
          inst.delivered = msg.value;
          new_deliveries_.push_back(msg.instance);
        }
        break;
    }
    return out;
  }

  /// The delivered value for an instance, once available.
  std::optional<V> delivered(const RbcInstanceId& instance) const {
    const auto it = instances_.find(instance);
    if (it == instances_.end()) return std::nullopt;
    return it->second.delivered;
  }

  /// Instances that reached delivery since the last call (each instance
  /// reported exactly once, in delivery order). Lets layered protocols
  /// react in O(1) instead of polling every instance.
  std::vector<RbcInstanceId> take_new_deliveries() {
    std::vector<RbcInstanceId> out;
    out.swap(new_deliveries_);
    return out;
  }

 private:
  struct Instance {
    bool echo_sent = false;
    bool ready_sent = false;
    std::set<AgentId> echoers;
    std::set<AgentId> readiers;
    std::map<V, std::size_t> echo_votes;
    std::map<V, std::size_t> ready_votes;
    std::optional<V> delivered;
  };

  std::size_t n_;
  std::size_t f_;
  AgentId self_;
  std::map<RbcInstanceId, Instance> instances_;
  std::vector<RbcInstanceId> new_deliveries_;
};

}  // namespace ftmao
