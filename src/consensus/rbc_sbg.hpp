#pragma once

// Asynchronous SBG over reliable broadcast — the paper's FIRST suggested
// asynchronous construction (Section 7): "algorithm SBG may be combined
// with the reliable broadcast algorithm in [1]". Every Step-1 tuple is
// disseminated with Bracha RBC, which removes equivocation; an agent in
// asynchronous round t waits until it has RBC-delivered round-t tuples
// from n - f distinct origins (its own included), trims f, and updates.
//
// Resilience: n > 3f — strictly better than the simple quorum variant in
// core/async_sbg.hpp (n > 5f), at the price of 3 protocol phases (INIT/
// ECHO/READY) per tuple instead of 1 message. Bench E15 measures that
// trade-off.

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/series.hpp"
#include "common/types.hpp"
#include "consensus/rbc.hpp"
#include "core/step_size.hpp"
#include "func/scalar_function.hpp"
#include "net/proto_engine.hpp"

namespace ftmao {

/// The RBC'd value: (state, gradient). Ordered so RBC can count votes.
using RbcSbgTuple = std::pair<double, double>;
using RbcSbgMessage = RbcMessage<RbcSbgTuple>;

struct RbcSbgConfig {
  std::size_t n = 0;
  std::size_t f = 0;          ///< n > 3f
  std::size_t max_rounds = 100;

  std::size_t quorum() const { return n - f; }
  void validate() const;
};

/// Honest participant: RBC engine + SBG update rule.
class RbcSbgNode final : public ProtoNode<RbcSbgMessage> {
 public:
  RbcSbgNode(AgentId id, ScalarFunctionPtr cost, double initial_state,
             const StepSchedule& schedule, const RbcSbgConfig& config);

  std::vector<Unicast<RbcSbgMessage>> boot() override;
  std::vector<Unicast<RbcSbgMessage>> on_receive(
      AgentId from, const RbcSbgMessage& msg) override;

  AgentId id() const { return id_; }
  double state() const { return state_; }
  Round current_round() const { return round_; }
  const std::vector<double>& history() const { return history_; }

 private:
  std::vector<Unicast<RbcSbgMessage>> to_everyone(
      std::vector<RbcSbgMessage> msgs) const;
  void collect_new_deliveries();
  std::vector<RbcSbgMessage> maybe_advance();

  AgentId id_;
  ScalarFunctionPtr cost_;
  double state_;
  const StepSchedule* schedule_;
  RbcSbgConfig config_;
  RbcProcess<RbcSbgTuple> rbc_;
  Round round_{1};
  std::vector<double> history_;
  // tag -> (origin -> delivered tuple); first delivery per origin wins.
  std::map<std::uint32_t, std::map<AgentId, RbcSbgTuple>> delivered_;
};

/// Byzantine participant that equivocates its own INITs per recipient
/// parity and stays silent in everyone else's instances (safety-critical
/// behaviour; liveness does not depend on it).
class EquivocatingRbcByz final : public ProtoNode<RbcSbgMessage> {
 public:
  EquivocatingRbcByz(AgentId id, std::size_t n, std::size_t max_rounds,
                     RbcSbgTuple value_even, RbcSbgTuple value_odd);

  std::vector<Unicast<RbcSbgMessage>> boot() override;
  std::vector<Unicast<RbcSbgMessage>> on_receive(
      AgentId from, const RbcSbgMessage& msg) override;

 private:
  std::vector<Unicast<RbcSbgMessage>> equivocate(std::uint32_t tag);

  AgentId id_;
  std::size_t n_;
  std::size_t max_rounds_;
  RbcSbgTuple even_;
  RbcSbgTuple odd_;
  std::set<std::uint32_t> tags_sent_;
};

struct RbcSbgRunResult {
  Series disagreement;   ///< per completed round, honest max - min
  std::vector<double> final_states;
  double virtual_time = 0.0;
  std::uint64_t messages_delivered = 0;  ///< protocol messages processed
};

/// Runs the RBC-based async SBG with the last `byzantine_count` agents
/// equivocating. Requires n > 3f.
RbcSbgRunResult run_rbc_sbg(const RbcSbgConfig& config,
                            const std::vector<ScalarFunctionPtr>& honest_costs,
                            const std::vector<double>& honest_initial,
                            std::size_t byzantine_count,
                            const StepSchedule& schedule, DelayModel& delays);

}  // namespace ftmao
