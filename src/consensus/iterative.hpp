#pragma once

// Iterative approximate Byzantine consensus — the skeleton SBG is built on
// ([16, 36]; SBG = this plus a gradient term). Each round every agent
// broadcasts its scalar, applies Trim to what it holds (own value, received
// values, defaults for the silent), and adopts the trimmed midpoint.
//
// Guarantees with n > 3f on a complete network:
//   * validity: honest values stay inside the initial honest hull;
//   * exponential convergence: the honest spread contracts by at least
//     (1 - 1/(2(m-f))) per round (the same factor as Lemma 3's (8)).
//
// Exposed separately so the consensus substrate can be tested and
// benchmarked in isolation from optimization.

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "common/series.hpp"
#include "common/types.hpp"
#include "net/sync.hpp"

namespace ftmao {

struct IterativeConsensusConfig {
  std::size_t n = 0;
  std::size_t f = 0;
  double default_value = 0.0;

  void validate() const;  // n > 3f
};

/// One correct participant.
class IterativeConsensusAgent final : public SyncNode<double> {
 public:
  IterativeConsensusAgent(AgentId id, double initial_value,
                          const IterativeConsensusConfig& config);

  double broadcast(Round t) override;
  void step(Round t, std::span<const Received<double>> inbox) override;

  AgentId id() const { return id_; }
  double value() const { return value_; }

 private:
  AgentId id_;
  double value_;
  IterativeConsensusConfig config_;
};

/// Byzantine participant defined by a lambda — consensus tests need many
/// tiny one-off behaviours.
class FunctionalByzantine final : public ByzantineNode<double> {
 public:
  using Behaviour = std::function<std::optional<double>(
      AgentId self, AgentId recipient, const RoundView<double>& view)>;

  explicit FunctionalByzantine(Behaviour behaviour);
  std::optional<double> send_to(AgentId self, AgentId recipient,
                                const RoundView<double>& view) override;

 private:
  Behaviour behaviour_;
};

struct ConsensusRunResult {
  Series disagreement;               ///< honest max - min per round
  std::vector<double> final_values;  ///< honest agents, in order
  double initial_hull_lo = 0.0;
  double initial_hull_hi = 0.0;

  /// True when every recorded honest value stayed within the initial hull.
  bool validity_held = true;
};

/// Runs iterative consensus for `rounds` rounds. `honest_initial` are the
/// honest agents' starting values; `byzantine_count` faulty agents are
/// driven by `behaviour` (nullptr behaviour = silent).
ConsensusRunResult run_iterative_consensus(
    const IterativeConsensusConfig& config,
    const std::vector<double>& honest_initial, std::size_t byzantine_count,
    FunctionalByzantine::Behaviour behaviour, std::size_t rounds);

}  // namespace ftmao
