#include "consensus/iterative.hpp"

#include <algorithm>
#include <memory>

#include "common/contracts.hpp"
#include "trim/trim.hpp"

namespace ftmao {

void IterativeConsensusConfig::validate() const {
  FTMAO_EXPECTS(n > 3 * f);
}

IterativeConsensusAgent::IterativeConsensusAgent(
    AgentId id, double initial_value, const IterativeConsensusConfig& config)
    : id_(id), value_(initial_value), config_(config) {
  config_.validate();
}

double IterativeConsensusAgent::broadcast(Round t) {
  FTMAO_EXPECTS(t.value >= 1);
  return value_;
}

void IterativeConsensusAgent::step(Round t,
                                   std::span<const Received<double>> inbox) {
  FTMAO_EXPECTS(t.value >= 1);
  FTMAO_EXPECTS(inbox.size() <= config_.n - 1);
  std::vector<double> values;
  values.reserve(config_.n);
  values.push_back(value_);
  for (const auto& msg : inbox) values.push_back(msg.payload);
  const std::size_t missing = (config_.n - 1) - inbox.size();
  for (std::size_t i = 0; i < missing; ++i)
    values.push_back(config_.default_value);
  value_ = trim_value(values, config_.f);
}

FunctionalByzantine::FunctionalByzantine(Behaviour behaviour)
    : behaviour_(std::move(behaviour)) {}

std::optional<double> FunctionalByzantine::send_to(
    AgentId self, AgentId recipient, const RoundView<double>& view) {
  if (!behaviour_) return std::nullopt;
  return behaviour_(self, recipient, view);
}

ConsensusRunResult run_iterative_consensus(
    const IterativeConsensusConfig& config,
    const std::vector<double>& honest_initial, std::size_t byzantine_count,
    FunctionalByzantine::Behaviour behaviour, std::size_t rounds) {
  config.validate();
  FTMAO_EXPECTS(honest_initial.size() + byzantine_count == config.n);
  FTMAO_EXPECTS(byzantine_count <= config.f);

  std::vector<std::unique_ptr<IterativeConsensusAgent>> agents;
  std::vector<std::unique_ptr<FunctionalByzantine>> byz;
  SyncEngine<double> engine;
  for (std::size_t i = 0; i < honest_initial.size(); ++i) {
    agents.push_back(std::make_unique<IterativeConsensusAgent>(
        AgentId{static_cast<std::uint32_t>(i)}, honest_initial[i], config));
    engine.add_honest(AgentId{static_cast<std::uint32_t>(i)},
                      agents.back().get());
  }
  for (std::size_t b = 0; b < byzantine_count; ++b) {
    byz.push_back(std::make_unique<FunctionalByzantine>(behaviour));
    engine.add_byzantine(
        AgentId{static_cast<std::uint32_t>(honest_initial.size() + b)},
        byz.back().get());
  }

  ConsensusRunResult result;
  const auto [lo_it, hi_it] =
      std::minmax_element(honest_initial.begin(), honest_initial.end());
  result.initial_hull_lo = *lo_it;
  result.initial_hull_hi = *hi_it;

  auto record = [&] {
    double lo = agents.front()->value();
    double hi = lo;
    for (const auto& a : agents) {
      lo = std::min(lo, a->value());
      hi = std::max(hi, a->value());
    }
    result.disagreement.push(hi - lo);
    if (lo < result.initial_hull_lo - 1e-12 ||
        hi > result.initial_hull_hi + 1e-12)
      result.validity_held = false;
  };
  record();
  for (std::size_t t = 1; t <= rounds; ++t) {
    engine.run_round(Round{static_cast<std::uint32_t>(t)});
    record();
  }
  for (const auto& a : agents) result.final_values.push_back(a->value());
  return result;
}

}  // namespace ftmao
