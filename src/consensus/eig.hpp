#pragma once

// Exponential Information Gathering (EIG) Byzantine broadcast — the
// classical synchronous Byzantine Generals algorithm (Lamport-Shostak-
// Pease OM(f) in Lynch's EIG formulation). With n > 3f agents and f + 1
// relay rounds it guarantees, for a designated sender s:
//
//   * validity:  if s is honest, every honest agent decides s's value;
//   * agreement: all honest agents decide the same value even if s and up
//                to f - 1 relayers are Byzantine.
//
// This is the "reliable broadcast" building block the paper's
// centralized-equivalent variant [26] relies on (see src/central). The
// message volume is Theta(n^f) per instance — affordable for the small
// systems the experiments use, and exactly why the paper stresses that
// plain SBG avoids it.
//
// The implementation simulates all participants in one object so tests
// and the central module can inject arbitrary per-recipient lies at every
// relay step (the strongest Byzantine behaviour the model allows).

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/types.hpp"

namespace ftmao {

/// Label of an EIG tree node: the chain of agents a claim travelled
/// through, starting with the sender. All entries are distinct.
using EigPath = std::vector<std::uint32_t>;

/// Byzantine behaviour hooks for one EIG instance. `true_value` is the
/// value the faulty agent actually holds for the node (it received the
/// protocol messages like everyone else); the attack may report anything.
class EigAttack {
 public:
  virtual ~EigAttack() = default;

  /// Round 1, faulty sender: the value claimed to `recipient`.
  virtual double initial_value(AgentId self, AgentId recipient) = 0;

  /// Rounds 2..f+1, faulty relayer: the value claimed to `recipient` for
  /// tree node `path` (which does not contain self).
  virtual double relay_value(AgentId self, AgentId recipient,
                             const EigPath& path, double true_value) = 0;
};

/// Built-in attacks.

/// Honest-equivalent behaviour (useful to isolate other agents' faults).
class EigHonestBehaviour final : public EigAttack {
 public:
  double initial_value(AgentId, AgentId) override;
  double relay_value(AgentId, AgentId, const EigPath&, double v) override;

  /// The value this "honest" faulty agent would broadcast as sender.
  explicit EigHonestBehaviour(double value) : value_(value) {}

 private:
  double value_;
};

/// Sender equivocation: +magnitude to even-id recipients, -magnitude to
/// odd; relays honestly.
class EigEquivocateSender final : public EigAttack {
 public:
  explicit EigEquivocateSender(double magnitude);
  double initial_value(AgentId self, AgentId recipient) override;
  double relay_value(AgentId, AgentId, const EigPath&, double v) override;

 private:
  double magnitude_;
};

/// Lies at every relay with recipient-dependent garbage; as sender,
/// equivocates too.
class EigChaoticRelay final : public EigAttack {
 public:
  explicit EigChaoticRelay(double magnitude);
  double initial_value(AgentId self, AgentId recipient) override;
  double relay_value(AgentId self, AgentId recipient, const EigPath&,
                     double) override;

 private:
  double magnitude_;
};

struct EigConfig {
  std::size_t n = 0;
  std::size_t f = 0;
  double default_value = 0.0;  ///< substituted for missing/garbled claims

  void validate() const;  // requires n > 3f
};

/// One broadcast instance: sender distributes one double to everyone.
class EigInstance {
 public:
  /// `attacks[i]` non-null marks agent i as Byzantine with that behaviour.
  /// Agents with null entries are honest. `attacks` must have size n.
  EigInstance(const EigConfig& config, AgentId sender,
              std::vector<EigAttack*> attacks);

  /// Runs all f + 1 rounds. `sender_value` is used when the sender is
  /// honest (ignored otherwise).
  void run(double sender_value);

  /// Decision of an honest agent (resolve of the tree root). Requires
  /// run() to have completed and `agent` to be honest.
  double decision(AgentId agent) const;

  /// Total number of tree nodes per agent (diagnostic: message cost).
  std::size_t tree_size() const;

 private:
  struct Tree {
    // Values keyed by path; filled level by level.
    std::map<EigPath, double> values;
  };

  bool is_byzantine(AgentId id) const;
  double resolve(const Tree& tree, const EigPath& path) const;

  EigConfig config_;
  AgentId sender_;
  std::vector<EigAttack*> attacks_;  // size n; nullptr = honest
  std::vector<Tree> trees_;          // one per agent (faulty ones track truth)
  bool ran_ = false;
};

/// Broadcast-everyone convenience: agent i's value values[i] is EIG-
/// broadcast in its own instance; returns the agreed vector as decided by
/// honest agent `observer` (identical for every honest observer by
/// agreement — asserted in tests).
std::vector<double> eig_broadcast_all(const EigConfig& config,
                                      const std::vector<double>& values,
                                      const std::vector<EigAttack*>& attacks,
                                      AgentId observer);

}  // namespace ftmao
