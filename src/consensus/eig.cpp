#include "consensus/eig.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace ftmao {

// ------------------------------------------------------------- behaviours

double EigHonestBehaviour::initial_value(AgentId, AgentId) { return value_; }
double EigHonestBehaviour::relay_value(AgentId, AgentId, const EigPath&,
                                       double v) {
  return v;
}

EigEquivocateSender::EigEquivocateSender(double magnitude)
    : magnitude_(magnitude) {}

double EigEquivocateSender::initial_value(AgentId, AgentId recipient) {
  return recipient.value % 2 == 0 ? magnitude_ : -magnitude_;
}

double EigEquivocateSender::relay_value(AgentId, AgentId, const EigPath&,
                                        double v) {
  return v;
}

EigChaoticRelay::EigChaoticRelay(double magnitude) : magnitude_(magnitude) {}

double EigChaoticRelay::initial_value(AgentId self, AgentId recipient) {
  // Deterministic but recipient-dependent garbage.
  const std::uint64_t h = mix64((static_cast<std::uint64_t>(self.value) << 32) |
                                recipient.value);
  return (h % 2 == 0 ? 1.0 : -1.0) * magnitude_;
}

double EigChaoticRelay::relay_value(AgentId self, AgentId recipient,
                                    const EigPath& path, double) {
  std::uint64_t h = mix64((static_cast<std::uint64_t>(self.value) << 32) |
                          recipient.value);
  for (std::uint32_t p : path) h = mix64(h ^ p);
  return (h % 3 == 0 ? 0.0 : (h % 3 == 1 ? magnitude_ : -magnitude_));
}

// ----------------------------------------------------------------- config

void EigConfig::validate() const {
  FTMAO_EXPECTS(n > 3 * f);
  FTMAO_EXPECTS(n >= 2);
}

// --------------------------------------------------------------- instance

EigInstance::EigInstance(const EigConfig& config, AgentId sender,
                         std::vector<EigAttack*> attacks)
    : config_(config), sender_(sender), attacks_(std::move(attacks)) {
  config_.validate();
  FTMAO_EXPECTS(sender_.value < config_.n);
  FTMAO_EXPECTS(attacks_.size() == config_.n);
  std::size_t byz = 0;
  for (const auto* a : attacks_)
    if (a != nullptr) ++byz;
  FTMAO_EXPECTS(byz <= config_.f);
  trees_.resize(config_.n);
}

bool EigInstance::is_byzantine(AgentId id) const {
  return attacks_[id.value] != nullptr;
}

void EigInstance::run(double sender_value) {
  FTMAO_EXPECTS(!ran_);
  ran_ = true;
  const std::size_t n = config_.n;

  // Round 1: the sender distributes its value; each agent stores val((s)).
  const EigPath root{sender_.value};
  for (std::uint32_t k = 0; k < n; ++k) {
    double v;
    if (!is_byzantine(sender_)) {
      v = sender_value;
    } else if (k == sender_.value) {
      v = sender_value;  // the faulty sender's own record (truth-tracking)
    } else {
      v = attacks_[sender_.value]->initial_value(sender_, AgentId{k});
    }
    trees_[k].values[root] = v;
  }

  // Rounds 2..f+1: relay the previous level.
  std::vector<EigPath> level{root};
  for (std::size_t round = 2; round <= config_.f + 1; ++round) {
    std::vector<EigPath> next_level;
    for (const EigPath& path : level) {
      for (std::uint32_t relayer = 0; relayer < n; ++relayer) {
        if (std::find(path.begin(), path.end(), relayer) != path.end())
          continue;
        EigPath child = path;
        child.push_back(relayer);
        next_level.push_back(child);
        const double truth = trees_[relayer].values.at(path);
        for (std::uint32_t k = 0; k < n; ++k) {
          double v = truth;
          if (k != relayer && is_byzantine(AgentId{relayer})) {
            v = attacks_[relayer]->relay_value(AgentId{relayer}, AgentId{k},
                                               path, truth);
          }
          trees_[k].values[child] = v;
        }
      }
    }
    level = std::move(next_level);
  }
}

double EigInstance::resolve(const Tree& tree, const EigPath& path) const {
  if (path.size() == config_.f + 1) return tree.values.at(path);

  // Strict majority over the resolved children; default on no majority.
  std::map<double, std::size_t> counts;
  std::size_t total = 0;
  for (std::uint32_t j = 0; j < config_.n; ++j) {
    if (std::find(path.begin(), path.end(), j) != path.end()) continue;
    EigPath child = path;
    child.push_back(j);
    ++counts[resolve(tree, child)];
    ++total;
  }
  for (const auto& [value, count] : counts) {
    if (2 * count > total) return value;
  }
  return config_.default_value;
}

double EigInstance::decision(AgentId agent) const {
  FTMAO_EXPECTS(ran_);
  FTMAO_EXPECTS(agent.value < config_.n);
  FTMAO_EXPECTS(!is_byzantine(agent));
  return resolve(trees_[agent.value], EigPath{sender_.value});
}

std::size_t EigInstance::tree_size() const {
  return trees_.empty() ? 0 : trees_.front().values.size();
}

// ---------------------------------------------------------- broadcast-all

std::vector<double> eig_broadcast_all(const EigConfig& config,
                                      const std::vector<double>& values,
                                      const std::vector<EigAttack*>& attacks,
                                      AgentId observer) {
  FTMAO_EXPECTS(values.size() == config.n);
  std::vector<double> agreed(config.n);
  for (std::uint32_t s = 0; s < config.n; ++s) {
    EigInstance instance(config, AgentId{s}, attacks);
    instance.run(values[s]);
    agreed[s] = instance.decision(observer);
  }
  return agreed;
}

}  // namespace ftmao
