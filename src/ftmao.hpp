#pragma once

// Umbrella header: the whole public API in one include. Prefer the
// per-module headers in larger projects; this exists for quick starts and
// for the API smoke test.

// foundations
#include "common/contracts.hpp"
#include "common/interval.hpp"
#include "common/rng.hpp"
#include "common/series.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/types.hpp"

// cost functions
#include "func/combination.hpp"
#include "func/functions.hpp"
#include "func/library.hpp"
#include "func/nonsmooth.hpp"
#include "func/scalar_function.hpp"
#include "func/spec.hpp"
#include "func/validate.hpp"

// numerics
#include "lp/simplex.hpp"
#include "lp/witness.hpp"
#include "opt/argmin.hpp"
#include "opt/bisection.hpp"
#include "opt/brent.hpp"
#include "opt/golden.hpp"
#include "trim/trim.hpp"

// networking / engines
#include "net/async.hpp"
#include "net/delay.hpp"
#include "net/proto_engine.hpp"
#include "net/sync.hpp"

// the algorithm and its variants
#include "core/admissibility.hpp"
#include "core/async_sbg.hpp"
#include "core/crash_sbg.hpp"
#include "core/payload.hpp"
#include "core/sbg.hpp"
#include "core/step_size.hpp"
#include "core/theory.hpp"
#include "core/valid_set.hpp"

// consensus substrates
#include "consensus/eig.hpp"
#include "consensus/iterative.hpp"
#include "consensus/rbc.hpp"
#include "consensus/rbc_sbg.hpp"

// variants and baselines
#include "adversary/strategies.hpp"
#include "baseline/consistent.hpp"
#include "baseline/dgd.hpp"
#include "baseline/local_gd.hpp"
#include "central/central_sbg.hpp"
#include "graph/graph_runner.hpp"
#include "graph/robustness.hpp"
#include "graph/topology.hpp"
#include "vector/vec.hpp"
#include "vector/vector_function.hpp"
#include "vector/vector_sbg.hpp"
#include "vector/vector_valid.hpp"

// experiment harness
#include "sim/attack_search.hpp"
#include "sim/async_runner.hpp"
#include "sim/certify.hpp"
#include "sim/crash_runner.hpp"
#include "sim/metrics.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "sim/scenario_io.hpp"
#include "sim/sweep.hpp"
#include "sim/trace.hpp"
