#include "opt/bisection.hpp"

#include <cmath>
#include <stdexcept>

#include "common/contracts.hpp"

namespace ftmao {

double bisect_threshold(const MonotonePredicate& pred, double lo, double hi,
                        const BisectOptions& opts) {
  FTMAO_EXPECTS(lo <= hi);
  FTMAO_EXPECTS(!pred(lo));
  FTMAO_EXPECTS(pred(hi));
  for (int i = 0; i < opts.max_iterations && hi - lo > opts.tolerance; ++i) {
    const double mid = lo + (hi - lo) / 2.0;
    if (pred(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;  // pred(hi) is true by loop invariant
}

Bracket expand_bracket(const MonotonePredicate& pred, double lo, double hi,
                       int max_expansions) {
  FTMAO_EXPECTS(lo <= hi);
  double step = std::max(1.0, hi - lo);
  for (int i = 0; i < max_expansions; ++i) {
    const bool at_lo = pred(lo);
    const bool at_hi = pred(hi);
    if (!at_lo && at_hi) return Bracket{lo, hi};
    if (at_lo) lo -= step;        // predicate already true: move left edge out
    if (!at_hi) hi += step;       // predicate still false: move right edge out
    step *= 2.0;
  }
  throw std::runtime_error(
      "expand_bracket: predicate never flipped within expansion budget");
}

}  // namespace ftmao
