#include "opt/golden.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace ftmao {

double golden_section_min(const std::function<double(double)>& f, double a,
                          double b, const GoldenOptions& opts) {
  FTMAO_EXPECTS(a <= b);
  constexpr double inv_phi = 0.6180339887498949;  // 1/phi
  double x1 = b - inv_phi * (b - a);
  double x2 = a + inv_phi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  for (int i = 0; i < opts.max_iterations && b - a > opts.tolerance; ++i) {
    if (f1 <= f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - inv_phi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + inv_phi * (b - a);
      f2 = f(x2);
    }
  }
  return a + (b - a) / 2.0;
}

}  // namespace ftmao
