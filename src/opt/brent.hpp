#pragma once

// Brent's method for root finding on a continuous function with a
// sign-changing bracket. Used where the target is continuous but not
// necessarily monotone (e.g. differences of envelope functions in tests);
// the monotone cases prefer opt/bisection.hpp.

#include <functional>

namespace ftmao {

struct BrentOptions {
  double tolerance = 1e-12;
  int max_iterations = 200;
};

/// Finds x in [a, b] with f(x) ~= 0. Requires f(a) and f(b) of opposite
/// sign (or one of them exactly zero).
double brent_root(const std::function<double(double)>& f, double a, double b,
                  const BrentOptions& opts = {});

}  // namespace ftmao
