#pragma once

// Monotone-predicate bisection and bracket expansion.
//
// These are the workhorses for argmin intervals and for the valid-optima
// set Y: the gradient of a convex function and the envelope functions
// r(x), s(x) of Appendix A are all non-decreasing, so "leftmost zero" and
// "rightmost zero" queries reduce to finding the threshold of a monotone
// boolean predicate.

#include <functional>

namespace ftmao {

/// A predicate assumed monotone in x: false for small x, true for large x.
using MonotonePredicate = std::function<bool(double)>;

/// Options shared by the bisection routines.
struct BisectOptions {
  double tolerance = 1e-10;   ///< absolute width at which to stop
  int max_iterations = 200;   ///< hard cap (2^-200 of bracket width)
};

/// Given pred monotone with pred(lo) == false and pred(hi) == true,
/// returns x* within tolerance of the threshold inf{x : pred(x)}.
/// The returned point satisfies pred(returned) == true.
double bisect_threshold(const MonotonePredicate& pred, double lo, double hi,
                        const BisectOptions& opts = {});

/// Expands geometrically from the seed interval [lo, hi] until
/// pred(lo) == false and pred(hi) == true. Throws std::runtime_error if no
/// flip is found within max_expansions doublings (predicate is constant as
/// far as we can see).
struct Bracket {
  double lo;
  double hi;
};
Bracket expand_bracket(const MonotonePredicate& pred, double lo, double hi,
                       int max_expansions = 200);

}  // namespace ftmao
