#pragma once

// Argmin interval of a convex C^1 function from its (non-decreasing,
// continuous) derivative:
//
//   min argmin = inf{ x : h'(x) >= 0 }   (leftmost zero of h')
//   max argmin = inf{ x : h'(x) >  0 }   (rightmost zero of h')
//
// Both are thresholds of monotone predicates, so plain bisection applies.

#include <functional>

#include "common/interval.hpp"
#include "opt/bisection.hpp"

namespace ftmao {

/// Computes the argmin interval of a convex function given its derivative.
/// `seed_lo`/`seed_hi` give the initial bracket guess (expanded as needed);
/// derivative must be negative somewhere left and positive somewhere right
/// (compact argmin), which admissibility guarantees.
inline Interval argmin_from_derivative(
    const std::function<double(double)>& derivative, double seed_lo = -1.0,
    double seed_hi = 1.0, const BisectOptions& opts = {}) {
  const MonotonePredicate nonneg = [&](double x) { return derivative(x) >= 0.0; };
  const MonotonePredicate positive = [&](double x) { return derivative(x) > 0.0; };

  const Bracket left_bracket = expand_bracket(nonneg, seed_lo, seed_hi);
  const double left = bisect_threshold(nonneg, left_bracket.lo, left_bracket.hi, opts);

  const Bracket right_bracket = expand_bracket(positive, seed_lo, seed_hi);
  const double right =
      bisect_threshold(positive, right_bracket.lo, right_bracket.hi, opts);

  // Bisection noise can invert a degenerate (point) argmin by ~tolerance.
  if (right < left) return Interval((left + right) / 2.0);
  return Interval(left, right);
}

}  // namespace ftmao
