#pragma once

// Golden-section search for unimodal (convex) minimization on a bracket.
// Used as an independent cross-check of derivative-based argmin
// computations in tests and validators.

#include <functional>

namespace ftmao {

struct GoldenOptions {
  double tolerance = 1e-10;
  int max_iterations = 300;
};

/// Returns a point within tolerance of a minimizer of the unimodal f over
/// [a, b].
double golden_section_min(const std::function<double(double)>& f, double a,
                          double b, const GoldenOptions& opts = {});

}  // namespace ftmao
