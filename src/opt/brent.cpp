#include "opt/brent.hpp"

#include <cmath>
#include <utility>

#include "common/contracts.hpp"

namespace ftmao {

// Classic Brent root bracketing (Brent 1973): combines bisection, secant,
// and inverse quadratic interpolation; guaranteed convergence with
// superlinear typical behaviour.
double brent_root(const std::function<double(double)>& f, double a, double b,
                  const BrentOptions& opts) {
  double fa = f(a);
  double fb = f(b);
  if (fa == 0.0) return a;
  if (fb == 0.0) return b;
  FTMAO_EXPECTS(fa * fb < 0.0);

  if (std::abs(fa) < std::abs(fb)) {
    std::swap(a, b);
    std::swap(fa, fb);
  }
  double c = a, fc = fa;
  bool mflag = true;
  double d = 0.0;

  for (int i = 0; i < opts.max_iterations; ++i) {
    if (fb == 0.0 || std::abs(b - a) < opts.tolerance) return b;

    double s;
    if (fa != fc && fb != fc) {
      // inverse quadratic interpolation
      s = a * fb * fc / ((fa - fb) * (fa - fc)) +
          b * fa * fc / ((fb - fa) * (fb - fc)) +
          c * fa * fb / ((fc - fa) * (fc - fb));
    } else {
      // secant
      s = b - fb * (b - a) / (fb - fa);
    }

    const double lo = (3.0 * a + b) / 4.0;
    const bool out_of_range = !((lo < s && s < b) || (b < s && s < lo));
    const bool slow = mflag ? std::abs(s - b) >= std::abs(b - c) / 2.0
                            : std::abs(s - b) >= std::abs(c - d) / 2.0;
    const bool tiny = mflag ? std::abs(b - c) < opts.tolerance
                            : std::abs(c - d) < opts.tolerance;
    if (out_of_range || slow || tiny) {
      s = a + (b - a) / 2.0;
      mflag = true;
    } else {
      mflag = false;
    }

    const double fs = f(s);
    d = c;
    c = b;
    fc = fb;
    if (fa * fs < 0.0) {
      b = s;
      fb = fs;
    } else {
      a = s;
      fa = fs;
    }
    if (std::abs(fa) < std::abs(fb)) {
      std::swap(a, b);
      std::swap(fa, fb);
    }
  }
  return b;
}

}  // namespace ftmao
