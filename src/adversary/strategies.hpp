#pragma once

// Byzantine strategies against SBG. Each one exploits a different weakness
// an unprotected algorithm would have:
//
//   Silent            omission; recipients substitute the default tuple
//   FixedValue        consistent extreme values (classic outlier)
//   SplitBrain        inconsistent per-recipient values — the duplicitous
//                     behaviour the paper stresses SBG must survive
//   HullEdge          collude at the honest extremes so trimming cannot
//                     discard them as outliers (they are never outside the
//                     honest range) — maximally biases the trim midpoint
//   RandomNoise       seeded random garbage, fresh per recipient
//   SignFlip          plausible states, inverted+amplified gradients (the
//                     gradient-poisoning attack from Byzantine ML)
//   PullToTarget      adaptive: fabricates tuples that drag the system
//                     toward an attacker-chosen point
//
// Every strategy implements both the synchronous and asynchronous
// Byzantine interfaces (identical signatures), so the same attack runs
// against SBG and async-SBG.

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "common/rng.hpp"
#include "core/payload.hpp"
#include "net/async.hpp"
#include "net/sync.hpp"

namespace ftmao {

/// Common base: one send_to override serves both engine interfaces.
class SbgAdversary : public ByzantineNode<SbgPayload>,
                     public AsyncByzantineNode<SbgPayload> {
 public:
  std::optional<SbgPayload> send_to(AgentId self, AgentId recipient,
                                    const RoundView<SbgPayload>& view) override = 0;
};

/// Per-round payload memo for strategies whose payload is a pure function
/// of the round view (recipient- and RNG-independent). Both engines fix
/// the view for the duration of a round and call send_to once per
/// recipient, so the derivation runs once per round and is replayed for
/// the remaining n-1 recipients — same payload bits, O(view) work per
/// round instead of per message. Generic over the payload type so the
/// vector strategies (vector/vector_attacks.hpp) memoize whole
/// d-dimensional payloads the same way.
template <typename Payload>
class BasicRoundPayloadCache {
 public:
  bool fresh(Round round) const {
    return !valid_ || round.value != round_;
  }
  const std::optional<Payload>& store(Round round,
                                      std::optional<Payload> payload) {
    round_ = round.value;
    valid_ = true;
    payload_ = std::move(payload);
    return payload_;
  }
  const std::optional<Payload>& get() const { return payload_; }

 private:
  std::uint32_t round_ = 0;
  bool valid_ = false;
  std::optional<Payload> payload_;
};

using RoundPayloadCache = BasicRoundPayloadCache<SbgPayload>;

/// Sends nothing; honest agents fall back to the default tuple (Step 2).
class SilentAdversary final : public SbgAdversary {
 public:
  std::optional<SbgPayload> send_to(AgentId, AgentId,
                                    const RoundView<SbgPayload>&) override;
};

/// Sends the same fixed tuple to everyone, every round.
class FixedValueAdversary final : public SbgAdversary {
 public:
  explicit FixedValueAdversary(SbgPayload payload);
  std::optional<SbgPayload> send_to(AgentId, AgentId,
                                    const RoundView<SbgPayload>&) override;

 private:
  SbgPayload payload_;
};

/// Sends (+magnitude, +gradient_magnitude) to even-id recipients and the
/// negation to odd-id recipients: different agents see contradictory
/// worlds.
class SplitBrainAdversary final : public SbgAdversary {
 public:
  SplitBrainAdversary(double state_magnitude, double gradient_magnitude);
  std::optional<SbgPayload> send_to(AgentId self, AgentId recipient,
                                    const RoundView<SbgPayload>&) override;

 private:
  double state_magnitude_;
  double gradient_magnitude_;
};

/// Observes the honest broadcasts and sends the extreme honest values
/// that coherently bias the trajectory: push_up pairs the max honest
/// state with the MIN honest gradient (a low gradient drags updates
/// upward), push_down the reverse. Because the values stay inside the
/// honest range, trimming can never identify them as outliers; this is
/// the optimal-bias strategy against trim-midpoint.
class HullEdgeAdversary final : public SbgAdversary {
 public:
  explicit HullEdgeAdversary(bool push_up);
  std::optional<SbgPayload> send_to(AgentId, AgentId,
                                    const RoundView<SbgPayload>&) override;

 private:
  bool push_up_;
  RoundPayloadCache cache_;
};

/// Independent uniform noise per (recipient, round); deterministic per
/// seed.
class RandomNoiseAdversary final : public SbgAdversary {
 public:
  RandomNoiseAdversary(Rng rng, double state_range, double gradient_range);
  std::optional<SbgPayload> send_to(AgentId, AgentId,
                                    const RoundView<SbgPayload>&) override;

 private:
  Rng rng_;
  double state_range_;
  double gradient_range_;
};

/// Echoes the median honest state (looks perfectly plausible) but sends
/// the negated mean honest gradient scaled by `amplification`.
class SignFlipAdversary final : public SbgAdversary {
 public:
  explicit SignFlipAdversary(double amplification);
  std::optional<SbgPayload> send_to(AgentId, AgentId,
                                    const RoundView<SbgPayload>&) override;

 private:
  double amplification_;
  RoundPayloadCache cache_;
};

/// Drags the system toward `target`: states at the target, gradients of
/// magnitude `gradient_magnitude` pointing from the honest median toward
/// the target.
class PullToTargetAdversary final : public SbgAdversary {
 public:
  PullToTargetAdversary(double target, double gradient_magnitude);
  std::optional<SbgPayload> send_to(AgentId, AgentId,
                                    const RoundView<SbgPayload>&) override;

 private:
  double target_;
  double gradient_magnitude_;
  RoundPayloadCache cache_;
};

/// Sleeper: behaves exactly like an honest median agent until
/// `activation_round`, then switches to the wrapped strategy. Probes
/// whether late activation (after trust/consensus built up) gains the
/// adversary anything — it must not, since SBG is memoryless.
class DelayedActivationAdversary final : public SbgAdversary {
 public:
  /// Does not own `late_strategy`; caller keeps it alive.
  DelayedActivationAdversary(Round activation_round, SbgAdversary& late_strategy);
  /// Owning variant (used by the scenario factory).
  DelayedActivationAdversary(Round activation_round,
                             std::unique_ptr<SbgAdversary> late_strategy);
  std::optional<SbgPayload> send_to(AgentId self, AgentId recipient,
                                    const RoundView<SbgPayload>& view) override;

 private:
  Round activation_;
  SbgAdversary* late_;
  std::unique_ptr<SbgAdversary> owned_;
  RoundPayloadCache dormant_cache_;  ///< active phase delegates uncached
};

/// Oscillator: alternates between pushing the extreme high and extreme low
/// honest tuple each round (a resonance attempt against the diminishing
/// step sizes).
class FlipFlopAdversary final : public SbgAdversary {
 public:
  FlipFlopAdversary(std::size_t period = 1);
  std::optional<SbgPayload> send_to(AgentId, AgentId,
                                    const RoundView<SbgPayload>& view) override;

 private:
  std::size_t period_;
  RoundPayloadCache cache_;
};

}  // namespace ftmao
