#include "adversary/strategies.hpp"

#include <algorithm>
#include <vector>

#include "common/contracts.hpp"

namespace ftmao {

namespace {

std::vector<double> honest_states(const RoundView<SbgPayload>& view) {
  std::vector<double> out;
  out.reserve(view.honest_broadcasts.size());
  for (const auto& msg : view.honest_broadcasts) out.push_back(msg.payload.state);
  return out;
}

double median_of(std::vector<double> v) {
  FTMAO_EXPECTS(!v.empty());
  const auto mid = v.begin() + static_cast<std::ptrdiff_t>(v.size() / 2);
  std::nth_element(v.begin(), mid, v.end());
  return *mid;
}

}  // namespace

// --------------------------------------------------------------- Silent

std::optional<SbgPayload> SilentAdversary::send_to(AgentId, AgentId,
                                                   const RoundView<SbgPayload>&) {
  return std::nullopt;
}

// ----------------------------------------------------------- FixedValue

FixedValueAdversary::FixedValueAdversary(SbgPayload payload)
    : payload_(payload) {}

std::optional<SbgPayload> FixedValueAdversary::send_to(
    AgentId, AgentId, const RoundView<SbgPayload>&) {
  return payload_;
}

// ----------------------------------------------------------- SplitBrain

SplitBrainAdversary::SplitBrainAdversary(double state_magnitude,
                                         double gradient_magnitude)
    : state_magnitude_(state_magnitude), gradient_magnitude_(gradient_magnitude) {
  FTMAO_EXPECTS(state_magnitude >= 0.0);
  FTMAO_EXPECTS(gradient_magnitude >= 0.0);
}

std::optional<SbgPayload> SplitBrainAdversary::send_to(
    AgentId, AgentId recipient, const RoundView<SbgPayload>&) {
  const double sign = (recipient.value % 2 == 0) ? 1.0 : -1.0;
  return SbgPayload{sign * state_magnitude_, sign * gradient_magnitude_};
}

// ------------------------------------------------------------- HullEdge

HullEdgeAdversary::HullEdgeAdversary(bool push_up) : push_up_(push_up) {}

std::optional<SbgPayload> HullEdgeAdversary::send_to(
    AgentId, AgentId, const RoundView<SbgPayload>& view) {
  if (!cache_.fresh(view.round)) return cache_.get();
  if (view.honest_broadcasts.empty())
    return cache_.store(view.round, std::nullopt);
  double state = view.honest_broadcasts.front().payload.state;
  double gradient = view.honest_broadcasts.front().payload.gradient;
  for (const auto& msg : view.honest_broadcasts) {
    if (push_up_) {
      // High state + low gradient both pull the update x~ - lambda*g~ up.
      state = std::max(state, msg.payload.state);
      gradient = std::min(gradient, msg.payload.gradient);
    } else {
      state = std::min(state, msg.payload.state);
      gradient = std::max(gradient, msg.payload.gradient);
    }
  }
  return cache_.store(view.round, SbgPayload{state, gradient});
}

// ---------------------------------------------------------- RandomNoise

RandomNoiseAdversary::RandomNoiseAdversary(Rng rng, double state_range,
                                           double gradient_range)
    : rng_(rng), state_range_(state_range), gradient_range_(gradient_range) {
  FTMAO_EXPECTS(state_range >= 0.0);
  FTMAO_EXPECTS(gradient_range >= 0.0);
}

std::optional<SbgPayload> RandomNoiseAdversary::send_to(
    AgentId, AgentId, const RoundView<SbgPayload>&) {
  return SbgPayload{rng_.uniform(-state_range_, state_range_),
                    rng_.uniform(-gradient_range_, gradient_range_)};
}

// ------------------------------------------------------------- SignFlip

SignFlipAdversary::SignFlipAdversary(double amplification)
    : amplification_(amplification) {
  FTMAO_EXPECTS(amplification > 0.0);
}

std::optional<SbgPayload> SignFlipAdversary::send_to(
    AgentId, AgentId, const RoundView<SbgPayload>& view) {
  if (!cache_.fresh(view.round)) return cache_.get();
  if (view.honest_broadcasts.empty())
    return cache_.store(view.round, std::nullopt);
  double mean_gradient = 0.0;
  for (const auto& msg : view.honest_broadcasts)
    mean_gradient += msg.payload.gradient;
  mean_gradient /= static_cast<double>(view.honest_broadcasts.size());
  return cache_.store(view.round,
                      SbgPayload{median_of(honest_states(view)),
                                 -amplification_ * mean_gradient});
}

// --------------------------------------------------------- PullToTarget

PullToTargetAdversary::PullToTargetAdversary(double target,
                                             double gradient_magnitude)
    : target_(target), gradient_magnitude_(gradient_magnitude) {
  FTMAO_EXPECTS(gradient_magnitude >= 0.0);
}

std::optional<SbgPayload> PullToTargetAdversary::send_to(
    AgentId, AgentId, const RoundView<SbgPayload>& view) {
  if (!cache_.fresh(view.round)) return cache_.get();
  if (view.honest_broadcasts.empty())
    return cache_.store(view.round, SbgPayload{target_, 0.0});
  const double median = median_of(honest_states(view));
  // A positive reported gradient pushes recipients' states down; point the
  // fake gradient from the honest median toward the target.
  const double direction = median > target_ ? 1.0 : -1.0;
  return cache_.store(view.round,
                      SbgPayload{target_, direction * gradient_magnitude_});
}

// ---------------------------------------------------- DelayedActivation

DelayedActivationAdversary::DelayedActivationAdversary(Round activation_round,
                                                       SbgAdversary& late_strategy)
    : activation_(activation_round), late_(&late_strategy) {}

DelayedActivationAdversary::DelayedActivationAdversary(
    Round activation_round, std::unique_ptr<SbgAdversary> late_strategy)
    : activation_(activation_round),
      late_(late_strategy.get()),
      owned_(std::move(late_strategy)) {
  FTMAO_EXPECTS(late_ != nullptr);
}

std::optional<SbgPayload> DelayedActivationAdversary::send_to(
    AgentId self, AgentId recipient, const RoundView<SbgPayload>& view) {
  if (view.round >= activation_) return late_->send_to(self, recipient, view);
  // Dormant phase: mimic a perfectly plausible honest agent (median state,
  // median gradient of the honest broadcasts).
  if (!dormant_cache_.fresh(view.round)) return dormant_cache_.get();
  if (view.honest_broadcasts.empty())
    return dormant_cache_.store(view.round, std::nullopt);
  std::vector<double> states = honest_states(view);
  std::vector<double> gradients;
  gradients.reserve(view.honest_broadcasts.size());
  for (const auto& msg : view.honest_broadcasts)
    gradients.push_back(msg.payload.gradient);
  return dormant_cache_.store(
      view.round,
      SbgPayload{median_of(std::move(states)), median_of(std::move(gradients))});
}

// ------------------------------------------------------------- FlipFlop

FlipFlopAdversary::FlipFlopAdversary(std::size_t period) : period_(period) {
  FTMAO_EXPECTS(period >= 1);
}

std::optional<SbgPayload> FlipFlopAdversary::send_to(
    AgentId, AgentId, const RoundView<SbgPayload>& view) {
  if (!cache_.fresh(view.round)) return cache_.get();
  if (view.honest_broadcasts.empty())
    return cache_.store(view.round, std::nullopt);
  const bool high = (view.round.value / period_) % 2 == 0;
  double state = view.honest_broadcasts.front().payload.state;
  double gradient = view.honest_broadcasts.front().payload.gradient;
  for (const auto& msg : view.honest_broadcasts) {
    if (high) {
      state = std::max(state, msg.payload.state);
      gradient = std::min(gradient, msg.payload.gradient);
    } else {
      state = std::min(state, msg.payload.state);
      gradient = std::max(gradient, msg.payload.gradient);
    }
  }
  return cache_.store(view.round, SbgPayload{state, gradient});
}

}  // namespace ftmao
