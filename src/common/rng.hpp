#pragma once

// Deterministic random number generation.
//
// All randomness in simulations flows through Rng so that every experiment
// is reproducible from a single 64-bit seed. Substreams (per agent, per
// purpose) are derived with a splitmix64 hash so that adding a consumer
// does not perturb the draws seen by existing consumers.

#include <cstdint>
#include <random>
#include <string_view>

namespace ftmao {

/// Deterministic pseudo-random source. Wraps std::mt19937_64 and offers
/// the handful of distributions the simulators need.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// Derives an independent substream; same (seed, tag, index) -> same
  /// stream, regardless of draw order elsewhere.
  Rng substream(std::string_view tag, std::uint64_t index = 0) const;

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal scaled: mean + stddev * N(0,1).
  double normal(double mean, double stddev);

  /// Bernoulli with probability p of true.
  bool bernoulli(double p);

  std::uint64_t seed() const { return seed_; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

/// splitmix64 finalizer; good avalanche for seed derivation.
std::uint64_t mix64(std::uint64_t x);

}  // namespace ftmao
