#pragma once

// Closed real interval [lo, hi]. The paper's scalar setting means every
// set we manipulate — argmin sets of admissible functions, the valid
// optima set Y (Lemma 1), constraint sets X (Section 6) — is a closed
// interval, so this little type carries a lot of the library.

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace ftmao {

/// Closed bounded interval [lo, hi] with lo <= hi.
class Interval {
 public:
  /// Degenerate interval {x}.
  constexpr explicit Interval(double x) : lo_(x), hi_(x) {}

  constexpr Interval(double lo, double hi) : lo_(lo), hi_(hi) {
    FTMAO_EXPECTS(lo <= hi);
  }

  constexpr double lo() const { return lo_; }
  constexpr double hi() const { return hi_; }
  constexpr double length() const { return hi_ - lo_; }
  constexpr double midpoint() const { return lo_ + (hi_ - lo_) / 2.0; }
  constexpr bool is_point() const { return lo_ == hi_; }

  constexpr bool contains(double x) const { return lo_ <= x && x <= hi_; }
  constexpr bool contains(const Interval& other) const {
    return lo_ <= other.lo_ && other.hi_ <= hi_;
  }

  /// Euclidean distance from x to the interval; 0 iff contains(x).
  constexpr double distance_to(double x) const {
    if (x < lo_) return lo_ - x;
    if (x > hi_) return x - hi_;
    return 0.0;
  }

  /// Nearest point of the interval to x (the metric projection of Sec. 6).
  constexpr double project(double x) const { return std::clamp(x, lo_, hi_); }

  /// Smallest interval containing both.
  constexpr Interval hull(const Interval& other) const {
    return Interval(std::min(lo_, other.lo_), std::max(hi_, other.hi_));
  }

  /// Expands by eps on both sides (eps >= 0).
  constexpr Interval inflate(double eps) const {
    FTMAO_EXPECTS(eps >= 0.0);
    return Interval(lo_ - eps, hi_ + eps);
  }

  friend constexpr bool operator==(const Interval&, const Interval&) = default;

 private:
  double lo_;
  double hi_;
};

}  // namespace ftmao
