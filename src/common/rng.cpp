#include "common/rng.hpp"

#include "common/contracts.hpp"

namespace ftmao {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Rng Rng::substream(std::string_view tag, std::uint64_t index) const {
  std::uint64_t h = seed_;
  for (char c : tag) h = mix64(h ^ static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  h = mix64(h ^ index);
  return Rng(h);
}

double Rng::uniform(double lo, double hi) {
  FTMAO_EXPECTS(lo <= hi);
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  FTMAO_EXPECTS(lo <= hi);
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::normal(double mean, double stddev) {
  FTMAO_EXPECTS(stddev >= 0.0);
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

bool Rng::bernoulli(double p) {
  FTMAO_EXPECTS(p >= 0.0 && p <= 1.0);
  return std::bernoulli_distribution(p)(engine_);
}

}  // namespace ftmao
