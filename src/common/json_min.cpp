#include "common/json_min.hpp"

#include <cctype>

#include "common/contracts.hpp"

namespace ftmao::jsonmin {

bool has_key(const std::string& json, const std::string& key) {
  return json.find('"' + key + '"') != std::string::npos;
}

std::size_t find_key(const std::string& json, const std::string& key) {
  const std::string quoted = '"' + key + '"';
  const std::size_t at = json.find(quoted);
  if (at == std::string::npos)
    throw ContractViolation("JSON: missing key \"" + key + "\"");
  std::size_t pos = at + quoted.size();
  while (pos < json.size() &&
         std::isspace(static_cast<unsigned char>(json[pos])))
    ++pos;
  if (pos >= json.size() || json[pos] != ':')
    throw ContractViolation("JSON: expected ':' after \"" + key + "\"");
  ++pos;
  while (pos < json.size() &&
         std::isspace(static_cast<unsigned char>(json[pos])))
    ++pos;
  if (pos >= json.size())
    throw ContractViolation("JSON: missing value for \"" + key + "\"");
  return pos;
}

std::string string_field(const std::string& json, const std::string& key) {
  std::size_t pos = find_key(json, key);
  if (json[pos] != '"')
    throw ContractViolation("JSON: \"" + key + "\" is not a string");
  const std::size_t end = json.find('"', pos + 1);
  if (end == std::string::npos)
    throw ContractViolation("JSON: unterminated string for \"" + key + "\"");
  const std::string value = json.substr(pos + 1, end - pos - 1);
  if (value.find('\\') != std::string::npos)
    throw ContractViolation("JSON: escapes unsupported in \"" + key + "\"");
  return value;
}

double number_field(const std::string& json, const std::string& key) {
  const std::size_t pos = find_key(json, key);
  std::size_t end = pos;
  while (end < json.size() &&
         (std::isdigit(static_cast<unsigned char>(json[end])) ||
          json[end] == '-' || json[end] == '+' || json[end] == '.' ||
          json[end] == 'e' || json[end] == 'E'))
    ++end;
  if (end == pos)
    throw ContractViolation("JSON: \"" + key + "\" is not a number");
  return std::stod(json.substr(pos, end - pos));
}

std::vector<std::string> string_array_field(const std::string& json,
                                            const std::string& key) {
  std::size_t pos = find_key(json, key);
  if (json[pos] != '[')
    throw ContractViolation("JSON: \"" + key + "\" is not an array");
  const std::size_t end = json.find(']', pos);
  if (end == std::string::npos)
    throw ContractViolation("JSON: unterminated array for \"" + key + "\"");
  std::vector<std::string> out;
  while (true) {
    const std::size_t open = json.find('"', pos);
    if (open == std::string::npos || open > end) break;
    const std::size_t close = json.find('"', open + 1);
    if (close == std::string::npos || close > end)
      throw ContractViolation("JSON: unterminated element in \"" + key +
                              "\"");
    out.push_back(json.substr(open + 1, close - open - 1));
    pos = close + 1;
  }
  return out;
}

}  // namespace ftmao::jsonmin
