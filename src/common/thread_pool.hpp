#pragma once

// Minimal fixed-size thread pool for embarrassingly-parallel experiment
// grids (sweeps, attack searches, certification barrages).
//
// Design constraints, in order:
//   1. Determinism: the pool never decides *what* a task computes, only
//      *when*. Callers address all output by task index into pre-sized
//      storage, so results are bit-identical regardless of thread count
//      or scheduling order.
//   2. Exception propagation: the first exception thrown by any task is
//      captured and rethrown from wait()/parallel_for_each on the calling
//      thread; remaining queued tasks still run (they are independent
//      grid cells — partial results are not observable anyway because the
//      rethrow happens after the barrier).
//   3. No work stealing, no futures, no per-task allocation:
//      parallel_for_each queues one drain-loop closure per worker against
//      a shared atomic index cursor, so a million-cell grid costs O(pool
//      size) allocations, not O(count). Tasks here are whole simulation
//      runs (milliseconds to seconds), so cursor contention is negligible.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ftmao {

/// Fixed set of std::jthread workers draining a shared FIFO queue.
/// Destruction drains the queue, then joins.
class ThreadPool {
 public:
  /// `threads == 0` means std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues one task. Never blocks (unbounded queue).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first exception any task raised (if one did). The pool is reusable
  /// after wait() returns or throws.
  void wait();

  /// Resolves a user-facing thread-count knob: 0 -> hardware concurrency,
  /// anything else unchanged (always >= 1).
  static std::size_t resolve_threads(std::size_t requested);

 private:
  void worker_loop(std::stop_token stop);

  std::mutex mutex_;
  std::condition_variable_any work_cv_;   ///< workers wait here
  std::condition_variable idle_cv_;       ///< wait() waits here
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  ///< queued + currently executing
  std::exception_ptr first_error_;
  std::vector<std::jthread> workers_;  ///< last member: joins before the rest die
};

/// Runs body(0) .. body(count - 1) on the pool and blocks until all are
/// done. Rethrows the first task exception.
void parallel_for_each(ThreadPool& pool, std::size_t count,
                       const std::function<void(std::size_t)>& body);

/// Convenience: `threads <= 1` (after resolving 0 to hardware concurrency)
/// runs the loop inline on the calling thread — the exact serial path with
/// zero threading overhead — otherwise spins up a transient pool. This is
/// what the grid drivers call with their `num_threads` knob.
void parallel_for_each(std::size_t threads, std::size_t count,
                       const std::function<void(std::size_t)>& body);

/// Benchmark thread ladder: {1, 2, 4, max} clipped to `max_threads`
/// (0 resolves to hardware concurrency), deduplicated, ascending — so a
/// single-core box reports one rung instead of four copies of it, and a
/// 3-core box reports {1, 2, 3}. Always non-empty, always starts at 1.
std::vector<std::size_t> thread_ladder(std::size_t max_threads = 0);

}  // namespace ftmao
