#pragma once

// Console table / CSV emission for the benchmark harness. Every bench
// binary prints the rows a paper table would contain; Table keeps the
// formatting consistent and machine-greppable.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace ftmao {

/// Fixed-column text table. Cells are strings; numeric helpers format with
/// a consistent precision.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent add() calls fill it left to right.
  Table& row();
  Table& add(std::string cell);
  Table& add(double v, int precision = 4);
  Table& add(std::size_t v);
  Table& add(int v);

  std::size_t rows() const { return cells_.size(); }

  /// Pretty aligned output with a header rule.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (no quoting needed for our numeric content).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

/// Formats a double with fixed precision (helper shared with reporters).
std::string format_double(double v, int precision = 4);

}  // namespace ftmao
