#pragma once

// Minimal scan-based field extraction for the repo's *own* flat JSON
// documents — shard manifests (sim/shard.hpp) and the fabric lease /
// completion / grid records (fabric/lease.hpp). Those codecs only ever
// read documents their matching writer produced (flat objects, string
// values drawn from [A-Za-z0-9_:.,+-]), so a scanner is sufficient; it
// still validates everything it touches and throws ContractViolation on
// anything unexpected. Not a general JSON parser — escapes and nested
// same-named keys are out of scope by construction.

#include <cstddef>
#include <string>
#include <vector>

namespace ftmao::jsonmin {

/// True iff `"key"` occurs in the document (writers emit each key once).
bool has_key(const std::string& json, const std::string& key);

/// Offset of the first value character after `"key":`. Throws on a
/// missing key or malformed key/value separator.
std::size_t find_key(const std::string& json, const std::string& key);

/// The string value of `key` (no escape support — throws if one appears).
std::string string_field(const std::string& json, const std::string& key);

/// The numeric value of `key`.
double number_field(const std::string& json, const std::string& key);

/// The elements of `key`'s array of strings.
std::vector<std::string> string_array_field(const std::string& json,
                                            const std::string& key);

}  // namespace ftmao::jsonmin
