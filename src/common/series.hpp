#pragma once

// Time-series container and the small amount of statistics the experiment
// harness needs: rate fitting on log-log scale (to check the paper's
// O(1/t) consensus rate), tail summaries, and partial-sum checks (for
// Lemma 4's summability claim).

#include <cstddef>
#include <span>
#include <vector>

namespace ftmao {

/// A value sampled once per iteration, index 0 = initial state.
class Series {
 public:
  Series() = default;
  explicit Series(std::vector<double> values) : values_(std::move(values)) {}

  void push(double v) { values_.push_back(v); }

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double operator[](std::size_t i) const { return values_[i]; }
  double back() const { return values_.back(); }
  std::span<const double> values() const { return values_; }

  /// Maximum over the last k entries (k clamped to size).
  double tail_max(std::size_t k) const;

  /// Mean over the last k entries (k clamped to size).
  double tail_mean(std::size_t k) const;

  /// First index whose value is <= threshold AND that never exceeds the
  /// threshold again ("rounds to epsilon" for convergence series).
  /// Returns size() if the series never settles below the threshold.
  std::size_t settled_below(double threshold) const;

 private:
  std::vector<double> values_;
};

/// Least-squares fit of log(y) = a + p*log(t) over entries with index in
/// [first, size) and y > 0. Returns the exponent p; a series decaying as
/// Theta(1/t) fits p near -1.
///
/// Entries with y <= 0 are skipped (a series that reaches exactly 0 has
/// converged faster than any power law; skipping is conservative).
double fit_log_log_slope(const Series& s, std::size_t first);

/// Partial sums of weights[i] * s[i]; used to check Lemma 4-style
/// summability numerically (the partial sums must flatten out).
std::vector<double> weighted_partial_sums(const Series& s,
                                          std::span<const double> weights);

}  // namespace ftmao
