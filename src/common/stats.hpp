#pragma once

// Descriptive statistics for multi-seed experiment aggregation: the
// E-series reports medians/quantiles across seeds so that a single lucky
// run cannot masquerade as the typical behaviour.

#include <cstddef>
#include <span>
#include <vector>

namespace ftmao {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1)
  double min = 0.0;
  double median = 0.0;
  double max = 0.0;
};

/// Summary statistics of a sample (requires at least one value).
Summary summarize(std::span<const double> values);

/// Linear-interpolation quantile, q in [0, 1].
double quantile(std::span<const double> values, double q);

/// Pearson correlation of two equal-length samples (size >= 2, both with
/// positive variance).
double correlation(std::span<const double> xs, std::span<const double> ys);

}  // namespace ftmao
