#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

namespace ftmao {

std::size_t ThreadPool::resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = resolve_threads(threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this](std::stop_token stop) { worker_loop(stop); });
  }
}

ThreadPool::~ThreadPool() {
  for (auto& worker : workers_) worker.request_stop();
  work_cv_.notify_all();
  // jthread members join on destruction; workers drain the queue before
  // honouring the stop request, so no submitted task is lost.
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop(std::stop_token stop) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, stop, [this] { return !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and nothing left
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void parallel_for_each(ThreadPool& pool, std::size_t count,
                       const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  // One drain-loop closure per worker against a shared atomic index
  // cursor — O(pool size) queued closures instead of one heap-allocated
  // std::function per task, so huge grids don't churn the allocator. An
  // index whose body throws records the first exception and the drain
  // loop continues, so every index is still attempted (the old
  // one-submission-per-index semantics) and the error is rethrown here
  // after the barrier.
  struct DrainState {
    std::atomic<std::size_t> next{0};
    std::mutex mutex;
    std::exception_ptr first_error;
  };
  auto state = std::make_shared<DrainState>();
  const std::size_t lanes =
      std::min(std::max<std::size_t>(pool.size(), 1), count);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    pool.submit([state, count, &body] {
      for (;;) {
        const std::size_t i =
            state->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          body(i);
        } catch (...) {
          std::lock_guard lock(state->mutex);
          if (!state->first_error)
            state->first_error = std::current_exception();
        }
      }
    });
  }
  pool.wait();
  if (state->first_error) std::rethrow_exception(state->first_error);
}

void parallel_for_each(std::size_t threads, std::size_t count,
                       const std::function<void(std::size_t)>& body) {
  const std::size_t resolved = ThreadPool::resolve_threads(threads);
  if (resolved <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  ThreadPool pool(std::min(resolved, count));
  parallel_for_each(pool, count, body);
}

std::vector<std::size_t> thread_ladder(std::size_t max_threads) {
  const std::size_t max = ThreadPool::resolve_threads(max_threads);
  std::vector<std::size_t> ladder;
  for (std::size_t rung :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, max}) {
    rung = std::min(rung, max);
    if (std::find(ladder.begin(), ladder.end(), rung) == ladder.end())
      ladder.push_back(rung);
  }
  std::sort(ladder.begin(), ladder.end());
  return ladder;
}

}  // namespace ftmao
