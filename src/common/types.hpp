#pragma once

// Strongly typed identifiers used across the library.
//
// Agents are numbered 0..n-1. Rounds are 0-based iteration indices: the
// paper's "iteration t >= 1" updates x[t-1] -> x[t]; in code, round t
// computes state_after_round(t) from state_after_round(t-1).

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>

namespace ftmao {

/// Index of an agent in the system, 0-based. A plain integral wrapper with
/// comparison so ids cannot be confused with counts or rounds.
struct AgentId {
  std::uint32_t value = 0;

  constexpr AgentId() = default;
  constexpr explicit AgentId(std::uint32_t v) : value(v) {}

  friend constexpr auto operator<=>(AgentId, AgentId) = default;
};

/// 1-based iteration index of the algorithm (t in the paper).
struct Round {
  std::uint32_t value = 0;

  constexpr Round() = default;
  constexpr explicit Round(std::uint32_t v) : value(v) {}

  constexpr Round next() const { return Round{value + 1}; }

  friend constexpr auto operator<=>(Round, Round) = default;
};

}  // namespace ftmao

template <>
struct std::hash<ftmao::AgentId> {
  std::size_t operator()(ftmao::AgentId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
