#pragma once

// Contract checking for preconditions/postconditions/invariants.
//
// Violations indicate programmer error (misuse of an API), so they throw
// ftmao::ContractViolation carrying the failed expression and location.
// Checks are always on: every caller of this library is a simulator or a
// test harness, where catching misuse early is worth far more than the
// branch cost (C++ Core Guidelines I.5/I.7).

#include <stdexcept>
#include <string>

namespace ftmao {

/// Thrown when an FTMAO_EXPECTS/FTMAO_ENSURES contract fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace ftmao

#define FTMAO_EXPECTS(cond)                                               \
  do {                                                                    \
    if (!(cond))                                                          \
      ::ftmao::detail::contract_fail("precondition", #cond, __FILE__,     \
                                     __LINE__);                           \
  } while (false)

#define FTMAO_ENSURES(cond)                                               \
  do {                                                                    \
    if (!(cond))                                                          \
      ::ftmao::detail::contract_fail("postcondition", #cond, __FILE__,    \
                                     __LINE__);                           \
  } while (false)
