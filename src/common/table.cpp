#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/contracts.hpp"

namespace ftmao {

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << std::defaultfloat << v;
  return os.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  FTMAO_EXPECTS(!headers_.empty());
}

Table& Table::row() {
  FTMAO_EXPECTS(cells_.empty() || cells_.back().size() == headers_.size());
  cells_.emplace_back();
  return *this;
}

Table& Table::add(std::string cell) {
  FTMAO_EXPECTS(!cells_.empty());
  FTMAO_EXPECTS(cells_.back().size() < headers_.size());
  cells_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add(double v, int precision) { return add(format_double(v, precision)); }
Table& Table::add(std::size_t v) { return add(std::to_string(v)); }
Table& Table::add(int v) { return add(std::to_string(v)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : cells_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : cells_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : cells_) print_row(row);
}

}  // namespace ftmao
