#include "common/series.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/contracts.hpp"

namespace ftmao {

double Series::tail_max(std::size_t k) const {
  FTMAO_EXPECTS(!values_.empty());
  k = std::min(k, values_.size());
  return *std::max_element(values_.end() - static_cast<std::ptrdiff_t>(k),
                           values_.end());
}

double Series::tail_mean(std::size_t k) const {
  FTMAO_EXPECTS(!values_.empty());
  k = std::min(k, values_.size());
  double sum = 0.0;
  for (std::size_t i = values_.size() - k; i < values_.size(); ++i)
    sum += values_[i];
  return sum / static_cast<double>(k);
}

std::size_t Series::settled_below(double threshold) const {
  std::size_t candidate = values_.size();
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] <= threshold) {
      if (candidate == values_.size()) candidate = i;
    } else {
      candidate = values_.size();
    }
  }
  return candidate;
}

double fit_log_log_slope(const Series& s, std::size_t first) {
  FTMAO_EXPECTS(first >= 1);  // log(t) needs t >= 1
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t count = 0;
  for (std::size_t t = first; t < s.size(); ++t) {
    if (s[t] <= 0.0) continue;
    const double x = std::log(static_cast<double>(t));
    const double y = std::log(s[t]);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++count;
  }
  // A series that collapses to exact zeros has converged faster than any
  // power law; report NaN rather than failing (callers print it as-is).
  if (count < 2) return std::numeric_limits<double>::quiet_NaN();
  const double n = static_cast<double>(count);
  const double denom = n * sxx - sx * sx;
  if (denom <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  return (n * sxy - sx * sy) / denom;
}

std::vector<double> weighted_partial_sums(const Series& s,
                                          std::span<const double> weights) {
  FTMAO_EXPECTS(weights.size() == s.size());
  std::vector<double> sums;
  sums.reserve(s.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    acc += weights[i] * s[i];
    sums.push_back(acc);
  }
  return sums;
}

}  // namespace ftmao
