#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace ftmao {

Summary summarize(std::span<const double> values) {
  FTMAO_EXPECTS(!values.empty());
  Summary s;
  s.count = values.size();

  double sum = 0.0;
  s.min = values.front();
  s.max = values.front();
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.count);

  double sq = 0.0;
  for (double v : values) sq += (v - s.mean) * (v - s.mean);
  s.stddev = s.count > 1 ? std::sqrt(sq / static_cast<double>(s.count - 1)) : 0.0;

  s.median = quantile(values, 0.5);
  return s;
}

double quantile(std::span<const double> values, double q) {
  FTMAO_EXPECTS(!values.empty());
  FTMAO_EXPECTS(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double correlation(std::span<const double> xs, std::span<const double> ys) {
  FTMAO_EXPECTS(xs.size() == ys.size());
  FTMAO_EXPECTS(xs.size() >= 2);
  const Summary sx = summarize(xs);
  const Summary sy = summarize(ys);
  FTMAO_EXPECTS(sx.stddev > 0.0 && sy.stddev > 0.0);
  double cov = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i)
    cov += (xs[i] - sx.mean) * (ys[i] - sy.mean);
  cov /= static_cast<double>(xs.size() - 1);
  return cov / (sx.stddev * sy.stddev);
}

}  // namespace ftmao
