#include "central/central_sbg.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "core/valid_set.hpp"
#include "trim/trim.hpp"

namespace ftmao {

void CentralScenario::validate() const {
  FTMAO_EXPECTS(n > 3 * f);
  FTMAO_EXPECTS(faulty.size() <= f);
  FTMAO_EXPECTS(functions.size() == n);
  FTMAO_EXPECTS(initial_states.size() == n);
  FTMAO_EXPECTS(rounds >= 1);
  for (std::size_t i : faulty) FTMAO_EXPECTS(i < n);
}

CentralRunMetrics run_central_sbg(const CentralScenario& scenario,
                                  const StepSchedule& schedule) {
  scenario.validate();
  const std::size_t n = scenario.n;

  auto is_faulty = [&](std::size_t i) {
    return std::find(scenario.faulty.begin(), scenario.faulty.end(), i) !=
           scenario.faulty.end();
  };

  std::vector<ScalarFunctionPtr> honest_fns;
  std::vector<std::size_t> honest_idx;
  for (std::size_t i = 0; i < n; ++i) {
    if (!is_faulty(i)) {
      honest_fns.push_back(scenario.functions[i]);
      honest_idx.push_back(i);
    }
  }
  const ValidFamily family(honest_fns, scenario.f);

  // Per-honest-agent state (they should stay identical; we simulate them
  // all independently and *check* rather than assume).
  std::vector<double> states;
  for (std::size_t i : honest_idx) states.push_back(scenario.initial_states[i]);

  // EIG attack wiring: faulty agents use scenario.attack.eig in every
  // instance (their own and as relayers in others').
  EigConfig eig_config;
  eig_config.n = n;
  eig_config.f = scenario.f;
  eig_config.default_value = scenario.default_value;
  std::vector<EigAttack*> attacks(n, nullptr);
  EigHonestBehaviour honest_stub(0.0);
  for (std::size_t i : scenario.faulty)
    attacks[i] = scenario.attack.eig != nullptr ? scenario.attack.eig
                                                : &honest_stub;

  CentralRunMetrics metrics;
  metrics.optima = family.optima_set();

  // Initial states legitimately differ; identity is claimed (and checked)
  // from the end of round 1 onward, once everyone has applied the first
  // common-knowledge update.
  auto record = [&](bool check_identity) {
    const auto [lo, hi] = std::minmax_element(states.begin(), states.end());
    metrics.disagreement.push(*hi - *lo);
    double dist = 0.0;
    for (double x : states)
      dist = std::max(dist, family.distance_to_optima(x));
    metrics.max_dist_to_y.push(dist);
    metrics.common_trajectory.push(states.front());
    if (check_identity && *hi - *lo > 1e-12)
      metrics.identical_trajectories = false;
  };
  record(false);

  for (std::size_t t = 1; t <= scenario.rounds; ++t) {
    // Assemble the true inputs of this round: honest agents report their
    // actual state/gradient; faulty agents feed the attack's claims.
    std::vector<double> input_states(n), input_gradients(n);
    for (std::size_t i = 0, h = 0; i < n; ++i) {
      if (is_faulty(i)) {
        input_states[i] = scenario.attack.state;
        input_gradients[i] = scenario.attack.gradient;
      } else {
        input_states[i] = states[h];
        input_gradients[i] = honest_fns[h]->derivative(states[h]);
        ++h;
      }
    }

    // Byzantine-broadcast both scalars. Each honest agent extracts ITS OWN
    // decisions from the protocol runs and updates independently — the
    // identical-trajectory property is observed, not assumed (EIG
    // agreement makes every observer's decision vector equal).
    std::vector<std::unique_ptr<EigInstance>> state_instances;
    std::vector<std::unique_ptr<EigInstance>> gradient_instances;
    for (std::uint32_t s = 0; s < n; ++s) {
      state_instances.push_back(
          std::make_unique<EigInstance>(eig_config, AgentId{s}, attacks));
      state_instances.back()->run(input_states[s]);
      gradient_instances.push_back(
          std::make_unique<EigInstance>(eig_config, AgentId{s}, attacks));
      gradient_instances.back()->run(input_gradients[s]);
    }

    const double lambda = schedule.at(t - 1);
    for (std::size_t h = 0; h < honest_idx.size(); ++h) {
      const AgentId observer{static_cast<std::uint32_t>(honest_idx[h])};
      std::vector<double> agreed_states(n), agreed_gradients(n);
      for (std::uint32_t s = 0; s < n; ++s) {
        agreed_states[s] = state_instances[s]->decision(observer);
        agreed_gradients[s] = gradient_instances[s]->decision(observer);
      }
      states[h] = trim_value(agreed_states, scenario.f) -
                  lambda * trim_value(agreed_gradients, scenario.f);
    }
    record(true);
  }

  metrics.final_states = states;
  return metrics;
}

}  // namespace ftmao
