#pragma once

// Centralized-equivalent SBG over Byzantine broadcast (Su-Vaidya [26] and
// the discussion after Theorem 2).
//
// If every Step-1 tuple is disseminated with Byzantine broadcast instead
// of point-to-point sends, faulty agents can no longer equivocate: all
// honest agents agree on one (state, gradient) tuple per agent per round,
// compute the exact same trims, and therefore evolve identically from
// round 1 on. The cost function being optimized stops drifting with t and
// the states acquire a true limit — at Theta(n^f) messages per round (two
// EIG instances per agent).
//
// This module implements that variant over src/consensus EIG and is the
// comparison point for plain SBG in tests and bench E11.

#include <memory>
#include <vector>

#include "common/interval.hpp"
#include "common/series.hpp"
#include "consensus/eig.hpp"
#include "core/step_size.hpp"
#include "func/scalar_function.hpp"

namespace ftmao {

/// Byzantine behaviour in the centralized variant: what the faulty agent
/// feeds into its own broadcast instances each round (per-recipient lies
/// are attempted through the EigAttack hooks but collapse to one agreed
/// value by EIG's agreement property).
struct CentralAttack {
  /// Attack used inside every EIG instance (sender and relayer roles);
  /// null = behave honestly inside the protocol but still feed `state` /
  /// `gradient` below as inputs.
  EigAttack* eig = nullptr;
  double state = 0.0;     ///< claimed state fed to the broadcast
  double gradient = 0.0;  ///< claimed gradient fed to the broadcast
};

struct CentralScenario {
  std::size_t n = 0;
  std::size_t f = 0;
  std::vector<std::size_t> faulty;
  std::vector<ScalarFunctionPtr> functions;  ///< size n (faulty unused)
  std::vector<double> initial_states;        ///< size n
  CentralAttack attack;
  std::size_t rounds = 200;
  double default_value = 0.0;

  void validate() const;
};

struct CentralRunMetrics {
  Series disagreement;       ///< honest max - min (should be ~0 from round 1)
  Series max_dist_to_y;      ///< vs the same valid-family Y as plain SBG
  Series common_trajectory;  ///< the (shared) honest state per round
  std::vector<double> final_states;
  Interval optima{0.0};

  /// True iff every honest agent held exactly the same state after every
  /// round — the headline property of the centralized variant.
  bool identical_trajectories = true;
};

/// Runs the centralized-equivalent SBG. Quadratic-in-tree-size cost:
/// intended for small n (<= ~13 with f <= 2).
CentralRunMetrics run_central_sbg(const CentralScenario& scenario,
                                  const StepSchedule& schedule);

}  // namespace ftmao
