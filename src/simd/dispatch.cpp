// Runtime ISA dispatch: pick the widest backend the CPU supports, once,
// and hand out its kernel table through a single atomic pointer.
//
// Backend availability has two layers:
//   - compile time: FTMAO_SIMD_HAS_SSE2 / FTMAO_SIMD_HAS_AVX2 /
//     FTMAO_SIMD_HAS_AVX512 are defined by src/simd/CMakeLists.txt only
//     when FTMAO_ENABLE_SIMD is ON, the target is x86-64, and the
//     compiler accepts the per-TU flag;
//   - run time: __builtin_cpu_supports() (cpuid) must confirm the feature
//     before a table whose code uses it is ever returned. An AVX2 binary
//     on an SSE2-only machine therefore degrades instead of trapping.
//
// Overrides, strongest first: simd_select() (the --isa flag, tests),
// then the FTMAO_ISA environment variable, then cpuid detection. An
// unsupported FTMAO_ISA value warns on stderr and falls back to
// detection — the per-backend ctest instances rely on this to degrade
// gracefully on hardware that lacks a compiled-in tier.

#include "simd/simd.hpp"

#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/contracts.hpp"

namespace ftmao {

const SimdKernels& simd_backend_scalar();
#ifdef FTMAO_SIMD_HAS_SSE2
const SimdKernels& simd_backend_sse2();
#endif
#ifdef FTMAO_SIMD_HAS_AVX2
const SimdKernels& simd_backend_avx2();
#endif
#ifdef FTMAO_SIMD_HAS_AVX512
const SimdKernels& simd_backend_avx512();
#endif

namespace {

constexpr std::array<SimdIsa, 4> kAllIsas = {SimdIsa::kScalar, SimdIsa::kSse2,
                                             SimdIsa::kAvx2, SimdIsa::kAvx512};

const SimdKernels* backend_or_null(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar:
      return &simd_backend_scalar();
    case SimdIsa::kSse2:
#ifdef FTMAO_SIMD_HAS_SSE2
      return &simd_backend_sse2();
#else
      return nullptr;
#endif
    case SimdIsa::kAvx2:
#ifdef FTMAO_SIMD_HAS_AVX2
      return &simd_backend_avx2();
#else
      return nullptr;
#endif
    case SimdIsa::kAvx512:
#ifdef FTMAO_SIMD_HAS_AVX512
      return &simd_backend_avx512();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

bool cpu_supports(SimdIsa isa) {
#if defined(__x86_64__) || defined(__i386__)
  switch (isa) {
    case SimdIsa::kScalar:
      return true;
    case SimdIsa::kSse2:
      return __builtin_cpu_supports("sse2") != 0;
    case SimdIsa::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case SimdIsa::kAvx512:
      return __builtin_cpu_supports("avx512f") != 0;
  }
  return false;
#else
  return isa == SimdIsa::kScalar;
#endif
}

/// True once the backend has been pinned explicitly — by simd_select()
/// or a successful FTMAO_ISA override. Width-aware auto-dispatch
/// (simd_kernels_for_lanes) defers to the pinned table when set.
std::atomic<bool>& explicit_override_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

/// First selection: FTMAO_ISA override (with fallback warning) or cpuid.
const SimdKernels* initial_backend() {
  if (const char* env = std::getenv("FTMAO_ISA");
      env != nullptr && *env != '\0' && std::strcmp(env, "auto") != 0) {
    bool known = false;
    for (SimdIsa isa : kAllIsas) {
      if (std::strcmp(env, simd_isa_name(isa)) == 0) {
        known = true;
        if (simd_supported(isa)) {
          explicit_override_flag().store(true, std::memory_order_release);
          return backend_or_null(isa);
        }
      }
    }
    std::fprintf(stderr,
                 "ftmao: FTMAO_ISA=%s is %s on this build/CPU; "
                 "falling back to %s\n",
                 env, known ? "unsupported" : "unknown",
                 simd_isa_name(simd_detect()));
  }
  return backend_or_null(simd_detect());
}

std::atomic<const SimdKernels*>& active_slot() {
  static std::atomic<const SimdKernels*> slot{nullptr};
  return slot;
}

}  // namespace

std::span<const SimdIsa> simd_compiled() {
  static const auto compiled = [] {
    static std::array<SimdIsa, 4> storage;
    std::size_t n = 0;
    for (SimdIsa isa : kAllIsas) {
      if (backend_or_null(isa) != nullptr) storage[n++] = isa;
    }
    return std::span<const SimdIsa>(storage.data(), n);
  }();
  return compiled;
}

bool simd_supported(SimdIsa isa) {
  return backend_or_null(isa) != nullptr && cpu_supports(isa);
}

SimdIsa simd_detect() {
  SimdIsa best = SimdIsa::kScalar;
  for (SimdIsa isa : kAllIsas) {
    if (simd_supported(isa)) best = isa;
  }
  return best;
}

const SimdKernels& simd_kernels_for(SimdIsa isa) {
  FTMAO_EXPECTS(simd_supported(isa));
  return *backend_or_null(isa);
}

const SimdKernels& simd_kernels() {
  const SimdKernels* table = active_slot().load(std::memory_order_acquire);
  if (table == nullptr) {
    table = initial_backend();
    const SimdKernels* expected = nullptr;
    // Racing first calls agree on the winner's table (both candidates
    // are process-lifetime statics), so losing the exchange is fine.
    active_slot().compare_exchange_strong(expected, table,
                                          std::memory_order_acq_rel);
    table = active_slot().load(std::memory_order_acquire);
  }
  return *table;
}

SimdIsa simd_detect_for_lanes(std::size_t lanes) {
  if (lanes == 0) return simd_detect();
  SimdIsa best = SimdIsa::kScalar;
  for (SimdIsa isa : kAllIsas) {
    if (!simd_supported(isa)) continue;
    const std::size_t w = backend_or_null(isa)->width;
    const std::size_t waste = (lanes + w - 1) / w * w - lanes;
    if (2 * waste < w) best = isa;
  }
  return best;
}

const SimdKernels& simd_kernels_for_lanes(std::size_t lanes) {
  // Resolve the active table first: the first call runs initial_backend(),
  // which is what latches a successful FTMAO_ISA override.
  const SimdKernels& active = simd_kernels();
  if (explicit_override_flag().load(std::memory_order_acquire)) return active;
  return simd_kernels_for(simd_detect_for_lanes(lanes));
}

SimdIsa simd_active() { return simd_kernels().isa; }

bool simd_select(SimdIsa isa) {
  if (!simd_supported(isa)) return false;
  explicit_override_flag().store(true, std::memory_order_release);
  active_slot().store(&simd_kernels_for(isa), std::memory_order_release);
  return true;
}

const char* simd_isa_name(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar:
      return "scalar";
    case SimdIsa::kSse2:
      return "sse2";
    case SimdIsa::kAvx2:
      return "avx2";
    case SimdIsa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

SimdIsa parse_simd_isa(const std::string& name) {
  if (name == "auto") return simd_detect();
  for (SimdIsa isa : kAllIsas) {
    if (name == simd_isa_name(isa)) return isa;
  }
  throw ContractViolation("unknown ISA '" + name +
                          "' (expected auto|scalar|sse2|avx2|avx512)");
}

}  // namespace ftmao
