// SSE2 (width-2) backend. Compiled with per-TU -msse2 -ffp-contract=off
// (SSE2 is the x86-64 baseline, but the flag is stated so the contract
// is explicit and the TU keeps working if the global defaults change).
//
// SSE2 has no BLENDVPD, so select() is the classic and/andnot/or mask
// blend — an exact bit operation on the full-lane masks CMPLTPD
// produces, so selected lane values match the scalar backend exactly.

#include <emmintrin.h>

#include "simd/lanes_impl.hpp"
#include "simd/simd.hpp"

namespace ftmao {

namespace {

struct Sse2Lanes {
  static constexpr std::size_t kWidth = 2;
  using Vec = __m128d;
  static Vec load(const double* p) { return _mm_loadu_pd(p); }
  static void store(double* p, Vec v) { _mm_storeu_pd(p, v); }
  static Vec broadcast(double x) { return _mm_set1_pd(x); }
  static Vec add(Vec a, Vec b) { return _mm_add_pd(a, b); }
  static Vec sub(Vec a, Vec b) { return _mm_sub_pd(a, b); }
  static Vec mul(Vec a, Vec b) { return _mm_mul_pd(a, b); }
  static Vec div(Vec a, Vec b) { return _mm_div_pd(a, b); }
  static Vec less(Vec a, Vec b) { return _mm_cmplt_pd(a, b); }
  static Vec select(Vec m, Vec t, Vec f) {
    return _mm_or_pd(_mm_and_pd(m, t), _mm_andnot_pd(m, f));
  }
  static Vec bitselect(Vec m, Vec t, Vec f) { return select(m, t, f); }
  static Vec sqrt(Vec a) { return _mm_sqrt_pd(a); }
  static Vec exp2i(Vec t) {
    const __m128i b = _mm_add_epi64(_mm_castpd_si128(t), _mm_set1_epi64x(1023));
    return _mm_castsi128_pd(_mm_slli_epi64(b, 52));
  }
};

}  // namespace

const SimdKernels& simd_backend_sse2() {
  static const SimdKernels kernels =
      simd_detail::make_kernels<Sse2Lanes>(SimdIsa::kSse2, "sse2");
  return kernels;
}

}  // namespace ftmao
