// Scalar deterministic transcendentals — the width-1 instantiations of
// simd/det_math_impl.hpp, plus the log-side helpers the value() paths
// need. This TU is compiled with -ffp-contract=off on every target
// (src/simd/CMakeLists.txt): it is the reference the vector backends
// must match bitwise, and baseline-FMA targets (aarch64) would
// otherwise be free to contract a*b+c inside the polynomials.

#include "simd/det_math.hpp"

#include <cmath>

#include "simd/lanes_impl.hpp"

namespace ftmao::detmath {

namespace {

using S = simd_detail::ScalarLanes;

// ln(2), correctly rounded.
constexpr double kLn2 = 0x1.62e42fefa39efp-1;

// 1/(2k+1) for the atanh series of det_log1p01 — exact small-integer
// divisions like every other coefficient in the det suite. 19 terms:
// s <= 1/3, so the truncated tail is below s^39/39 < 3e-20.
constexpr double kLogC[19] = {
    1.0,        1.0 / 3.0,  1.0 / 5.0,  1.0 / 7.0,  1.0 / 9.0,
    1.0 / 11.0, 1.0 / 13.0, 1.0 / 15.0, 1.0 / 17.0, 1.0 / 19.0,
    1.0 / 21.0, 1.0 / 23.0, 1.0 / 25.0, 1.0 / 27.0, 1.0 / 29.0,
    1.0 / 31.0, 1.0 / 33.0, 1.0 / 35.0, 1.0 / 37.0,
};

}  // namespace

double det_exp(double x) { return simd_detail::det_exp_v<S>(x); }

double det_tanh(double z) { return simd_detail::det_tanh_v<S>(z); }

double det_sigmoid(double z) { return simd_detail::det_sigmoid_v<S>(z); }

double det_sigmoid_prime(double z) {
  const double s = det_sigmoid(z);
  return s * (1.0 - s);
}

double det_log1p01(double q) {
  // ln(1+q) = 2 atanh(q/(2+q)); for q in [0,1], s = q/(2+q) <= 1/3.
  const double s = q / (2.0 + q);
  const double s2 = s * s;
  double p = kLogC[18];
  for (int i = 17; i >= 0; --i) p = p * s2 + kLogC[i];
  return 2.0 * s * p;
}

double det_softplus(double z) {
  // max(z, 0) + ln(1 + exp(-|z|)); exp's flush-to-zero tail makes the
  // log term vanish exactly for z beyond +/-708, giving the asymptotes
  // softplus(z) -> z and softplus(z) -> 0 with no cancellation.
  const double az = z < 0.0 ? -z : z;
  const double mx = z > 0.0 ? z : 0.0;
  return mx + det_log1p01(det_exp(-az));
}

double val_log_cosh(double x, double center, double width, double scale) {
  // log(cosh(z)) = |z| + ln(1 + exp(-2|z|)) - ln(2): exact at z = 0
  // (ln2 - ln2), monotone to the asymptote |z| - ln2, and the exp
  // argument is always <= 0 so det_log1p01's [0,1] domain holds.
  const double z = (x - center) / width;
  const double az = z < 0.0 ? -z : z;
  const double lc = az + det_log1p01(det_exp(-2.0 * az)) - kLn2;
  return scale * width * lc;
}

double val_smooth_abs(double x, double center, double eps, double scale) {
  const double r = x - center;
  return scale * (std::sqrt(r * r + eps * eps) - eps);
}

double val_softplus_basin(double x, double a, double b, double width,
                          double scale) {
  return scale * width *
         (det_softplus((x - b) / width) + det_softplus((a - x) / width));
}

// The gradient helpers run the batch kernels at count = 1: scalar
// derivative() and every SIMD lane are THE SAME instantiated code, so
// bit-identity is by construction, not by parallel maintenance.

double grad_tanh(double x, double center, double width, double scale) {
  double g;
  simd_detail::gradient_tanh_impl<S>(&x, &center, &width, &scale, &g, 1);
  return g;
}

double grad_smooth_abs(double x, double center, double eps, double scale) {
  double g;
  simd_detail::gradient_smooth_abs_impl<S>(&x, &center, &eps, &scale, &g, 1);
  return g;
}

double grad_softplus_diff(double x, double a, double b, double width,
                          double scale) {
  double g;
  simd_detail::gradient_softplus_diff_impl<S>(&x, &a, &b, &width, &scale, &g,
                                              1);
  return g;
}

}  // namespace ftmao::detmath
