#pragma once

// Explicit SIMD lane backend with runtime ISA dispatch.
//
// The batched SoA engine (sim/batch_runner + trim/trim_batch) turned the
// round hot path into lanewise loops over contiguous replica rows. This
// subsystem stops relying on the -O2 autovectorizer for those loops:
// each kernel is written once against a width-agnostic `DoubleLanes`
// concept (simd/lanes_impl.hpp) and instantiated in four separately
// compiled translation units — scalar (width 1, portable), SSE2 (width
// 2), AVX2 (width 4), and AVX-512F (width 8), the wider three compiled
// with a per-TU -m<isa> so the rest of the tree keeps the default
// architecture. The best backend the CPU supports is selected once,
// lazily, via cpuid (runtime dispatch through a function-pointer table —
// one indirect call per *kernel invocation*, not per lane).
//
// Determinism contract (load-bearing — see docs/performance.md):
// every backend produces bit-identical results to every other backend,
// and to the scalar reference engine, for the same inputs. Three rules
// enforce this:
//   1. Identical per-lane operation sequences. A kernel performs the
//      same IEEE-754 operations in the same order in every lane of
//      every backend; vector tails fall through to the width-1 code
//      path of the *same* primitive. No FMA contraction is permitted
//      (the SIMD TUs are compiled with -ffp-contract=off and never
//      enable -mfma), so a*b+c rounds twice everywhere.
//   2. Compare-exchange is a conditional swap, not min/max. The
//      hardware MINPD/MAXPD instructions return the *second* operand on
//      equal inputs while std::min/std::max return the *first*; on the
//      pair (+0.0, -0.0), which compares equal, min/max formulations
//      therefore duplicate one bit pattern and destroy the other. The
//      sorting-network comparator here is
//          swap if b < a
//      which is multiset-preserving bit-for-bit: the network output is
//      a true permutation of the input doubles (signed zeros survive
//      with their signs), so selected order statistics are the same
//      doubles the scalar nth_element path selects, up to ordering of
//      equal-comparing values — and every downstream reduction
//      (midpoint, ascending-order mean) is insensitive to that ordering
//      at the bit level.
//   3. min/max primitives follow std::min/std::max tie semantics
//      (return the first argument on ties), implemented as compare +
//      blend, so clamp-style gradient kernels match std::clamp bitwise.
//
// NaNs: inputs are NaN-free by engine precondition (admissible costs
// and finite payloads). The ordered-quiet compares used here make NaN
// behavior *deterministic and backend-identical* anyway (a NaN never
// swaps), but sortedness is only guaranteed for NaN-free input.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>

namespace ftmao {

/// Comparator index pair (i, j), i < j: order rows i and j so the
/// lanewise-smaller values land in row i. (Canonical home of the type
/// used by trim/trim_batch's sorting networks.)
using ComparatorPair = std::pair<std::uint16_t, std::uint16_t>;

/// Instruction-set tiers, worst to best. kScalar is always compiled;
/// kSse2/kAvx2/kAvx512 exist only on x86-64 builds with
/// FTMAO_ENABLE_SIMD=ON and a compiler that accepts the per-TU flag.
enum class SimdIsa : std::uint8_t {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
  kAvx512 = 3
};

/// Devirtualized kernel entry points for one backend. All pointers are
/// always non-null. Every kernel is strictly lanewise: lane k of every
/// output depends only on lane k of every input, so callers may pad
/// arrays to a lane multiple with arbitrary finite values.
struct SimdKernels {
  SimdIsa isa = SimdIsa::kScalar;
  const char* name = "scalar";  ///< "scalar" | "sse2" | "avx2" | "avx512"
  std::size_t width = 1;        ///< doubles per vector register

  /// Applies a comparator network to an n x count matrix whose rows are
  /// `stride` doubles apart: for each pair (i, j), conditionally swaps
  /// data[i*stride + k] and data[j*stride + k] (k < count) so the
  /// smaller lands in row i. Multiset-preserving per lane (rule 2).
  void (*sort_network)(double* data, std::size_t stride,
                       const ComparatorPair* pairs, std::size_t num_pairs,
                       std::size_t count);

  /// out[k] = ys[k] + (yl[k] - ys[k]) / 2  — the Trim midpoint.
  void (*trim_midpoint)(const double* ys, const double* yl, double* out,
                        std::size_t count);

  /// acc[k] += row[k]  — one ascending-order accumulation step of the
  /// batched trimmed mean.
  void (*accumulate_rows)(double* acc, const double* row, std::size_t count);

  /// out[k] = out[k] / divisor  — the trimmed-mean normalization.
  void (*divide_rows)(double* out, double divisor, std::size_t count);

  /// g[k] = scale[k] * clamp(min(x[k]-a[k], 0) + max(x[k]-b[k], 0),
  ///                         lo[k], hi[k])
  /// — the closed-form batch gradient of the piecewise-linear-saturated
  /// quadratic families (func/scalar_function.hpp: BatchGradientKernel).
  /// min/max/clamp follow std::min/std::max/std::clamp tie semantics
  /// (rule 3), so this is bit-identical to the virtual derivative().
  void (*gradient_clamp)(const double* x, const double* a, const double* b,
                         const double* lo, const double* hi,
                         const double* scale, double* g, std::size_t count);

  /// g[k] = scale[k] * tanh((x[k] - c[k]) / w[k])
  /// — the LogCosh batch gradient. tanh here is the deterministic
  /// polynomial implementation (simd/det_math_impl.hpp), NOT libm: the
  /// scalar LogCosh::derivative calls the width-1 instantiation of the
  /// same body, so this is bit-identical to the virtual path on every
  /// backend and platform.
  void (*gradient_tanh)(const double* x, const double* c, const double* w,
                        const double* scale, double* g, std::size_t count);

  /// g[k] = scale[k] * r / sqrt(r^2 + eps[k]^2), r = x[k] - c[k]
  /// — the SmoothAbs batch gradient (sqrt is correctly rounded by
  /// IEEE 754, so it is bit-stable across backends like add/mul).
  void (*gradient_smooth_abs)(const double* x, const double* c,
                              const double* eps, const double* scale, double* g,
                              std::size_t count);

  /// g[k] = scale[k] * (sigmoid((x[k]-b[k])/w[k]) - sigmoid((a[k]-x[k])/w[k]))
  /// — the SoftplusBasin batch gradient, on the deterministic sigmoid.
  void (*gradient_softplus_diff)(const double* x, const double* a,
                                 const double* b, const double* w,
                                 const double* scale, double* g,
                                 std::size_t count);

  /// Fused projected SBG step, x <- Pi(x - lambda[t] * g):
  ///   u[k]    = tx[k] - lambda[k] * tg[k]
  ///   next[k] = clamp(u[k], clo[k], chi[k])
  ///   x[k]    = next[k]
  ///   pe[k]   = pe_mask[k] ? next[k] - u[k] : 0.0
  /// Unconstrained lanes pass clo = -inf, chi = +inf (clamp is then the
  /// bitwise identity on finite u) with pe_mask all-zero, matching the
  /// scalar engine's literal 0.0 projection error. pe_mask lanes are
  /// all-ones / all-zeros bit masks.
  void (*fused_step)(const double* tx, const double* tg, const double* lambda,
                     const double* clo, const double* chi,
                     const double* pe_mask, double* x, double* pe,
                     std::size_t count);

  /// Masked payload blend, the delivery-filter substitution:
  ///   outx[k] = mask[k] ? px[k] : dx[k]
  ///   outg[k] = mask[k] ? pg[k] : dg[k]
  /// mask lanes are *stored* all-ones / all-zeros doubles (a lane is
  /// taken iff any mask bit is set, matching ScalarLanes::bitselect).
  /// Used by the batch engines to substitute per-replica default
  /// payloads where a Byzantine payload is absent or a delivery filter
  /// dropped the message — pure lane selection, so backend-independent
  /// at the bit level by construction.
  void (*masked_blend)(const double* mask, const double* px, const double* pg,
                       const double* dx, const double* dg, double* outx,
                       double* outg, std::size_t count);
};

/// Backends compiled into this binary (always contains kScalar).
std::span<const SimdIsa> simd_compiled();

/// True iff `isa` is compiled in AND the running CPU supports it.
bool simd_supported(SimdIsa isa);

/// The best supported backend per cpuid (ignores overrides).
SimdIsa simd_detect();

/// Width-aware detection for a batched workload with `lanes` useful
/// lanes per row: the widest supported backend whose register width
/// does not waste half or more of its lanes on row-tail padding, i.e.
/// the widest width w with
///
///   2 * (roundup(lanes, w) - lanes) < w.
///
/// A backend that pads a 3-lane row to 8 spends most of each register
/// on dead lanes and loses to a narrower tier on real batches (the
/// measured "avx512-auto slower at seeds=3" regression); this rule
/// keeps auto-dispatch on the widest backend that stays mostly busy.
/// lanes == 0 means "width unknown" and degrades to simd_detect().
SimdIsa simd_detect_for_lanes(std::size_t lanes);

/// The kernel table for a specific backend. Requires simd_supported(isa).
const SimdKernels& simd_kernels_for(SimdIsa isa);

/// The active backend. Selected on first use: FTMAO_ISA environment
/// override ("scalar" | "sse2" | "avx2" | "avx512"; unsupported values
/// warn on stderr and fall back) else simd_detect(). Subsequent calls
/// are a single atomic load.
const SimdKernels& simd_kernels();

/// The kernel table a batched engine should use for rows of `lanes`
/// useful lanes. An explicit override — a prior simd_select() call or a
/// successful FTMAO_ISA environment override — always wins (forced-ISA
/// tests and --isa depend on that); otherwise this is
/// simd_kernels_for(simd_detect_for_lanes(lanes)). Engines capture the
/// table once per run, so a later simd_select affects only new runs.
const SimdKernels& simd_kernels_for_lanes(std::size_t lanes);

/// The active backend's ISA tier.
SimdIsa simd_active();

/// Forces the active backend (the `--isa` flag, per-backend tests).
/// Returns false (and changes nothing) if unsupported. Not thread-safe
/// against concurrent kernel invocations: select before fanning out.
bool simd_select(SimdIsa isa);

/// "scalar" | "sse2" | "avx2" | "avx512".
const char* simd_isa_name(SimdIsa isa);

/// Parses an ISA name as accepted by --isa/FTMAO_ISA ("auto" returns
/// simd_detect()). Throws ContractViolation on unknown names.
SimdIsa parse_simd_isa(const std::string& name);

}  // namespace ftmao
