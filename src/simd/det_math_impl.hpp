#pragma once

// Deterministic transcendental kernels, width-agnostic.
//
// This header is a fragment of ftmao::simd_detail: it is included by
// simd/lanes_impl.hpp AFTER the DoubleLanes helpers (lane_min / lane_max /
// lane_clamp) are defined, and instantiates against the same policy types.
// Do not include it directly from outside src/simd.
//
// The math here replaces libm for the transcendental cost families
// (LogCosh, SmoothAbs, SoftplusBasin). libm's exp/tanh are NOT part of
// the determinism contract — different libms (glibc vs musl vs Apple) and
// different ISAs round the last bit differently — so the batch engines
// could never devirtualize those rows against a libm scalar reference.
// These routines are built only from operations IEEE 754 pins exactly
// (+, −, ×, ÷, sqrt, compares, blends, integer bit shifts), evaluated in
// one fixed order, so every backend and every platform produces the same
// bits. docs/performance.md ("Deterministic transcendentals") carries the
// full argument.
//
// ftmao_exp — exp(x) via Cody–Waite range reduction:
//
//   k = round_to_nearest_even(x * log2(e))   (magic-constant add: adding
//       1.5·2^52 forces the round in the FPU adder itself — branch-free,
//       identical everywhere, and works on SSE2 which has no floor)
//   r = (x − k·ln2_hi) − k·ln2_lo            (|r| <= 0.3466; ln2_hi has
//       its low 26 mantissa bits zero, so k·ln2_hi is EXACT for |k|<2^26)
//   exp(x) = 2^k · P13(r)                     (degree-13 Taylor, Horner;
//       truncation < 5e-18 relative, below half an ulp)
//
// 2^k is constructed by integer arithmetic on the magic-summed double
// (exp2i): no table, no second rounding. Documented deviations from libm:
// x > 709 saturates to +inf (libm overflows at ~709.78 — staying at or
// under 2^1023 keeps exp2i's exponent field in range) and x < −708
// flushes to +0 (no denormal outputs). NaN propagates: every tail
// override triggers only on a TRUE ordered compare, which NaN fails.
//
// ftmao_tanh — three regimes, blended branch-free per lane:
//   |z| <  0.25 : z · Q11(z²)   (odd Taylor through z²³; preserves ±0,
//                                denormals, and the sign bit exactly)
//   |z| >= 0.25 : t = (e − 1)/(e + 1) with e = exp(2·min(|z|, 20)); sign
//                 restored by a compare+blend on the original z
//   |z| >= 20   : the same formula saturates to ±1.0 exactly (e ≈ 2.4e17,
//                 so e∓1 rounds to e and the quotient is literally 1.0 —
//                 which IS the correctly rounded tanh there)
//
// sigmoid — σ(z) = select(z<0, e, 1) / (1 + e) with e = exp(−|z|):
// the numerically stable two-sided form, one division, saturating to
// exactly 0/1 through exp's tails. σ(±0) = 0.5 both ways.
//
// All polynomial coefficients are exact small-integer IEEE divisions
// (1/6!, −17/315, …) folded at compile time — correctly rounded by the
// standard, so no decimal-literal parsing can vary across toolchains.

#include <cstddef>
#include <cstdint>
#include <limits>

namespace ftmao::simd_detail {

inline constexpr double kDetLog2E = 0x1.71547652b82fep+0;
inline constexpr double kDetLn2Hi = 0x1.62e42fee00000p-1;  // low 26 bits zero
inline constexpr double kDetLn2Lo = 0x1.a39ef35793c76p-33;
inline constexpr double kDetExpMagic = 6755399441055744.0;  // 1.5 * 2^52
inline constexpr double kDetExpHi = 709.0;   // exp(709) < DBL_MAX
inline constexpr double kDetExpLo = -708.0;  // exp(-708) > DBL_MIN
inline constexpr double kDetTanhSmall = 0.25;
inline constexpr double kDetTanhSat = 20.0;

// 1/k! for the exp Taylor polynomial (all factorials < 2^53, so each
// quotient is one correctly rounded division).
inline constexpr double kDetExpC[14] = {
    1.0,
    1.0,
    1.0 / 2.0,
    1.0 / 6.0,
    1.0 / 24.0,
    1.0 / 120.0,
    1.0 / 720.0,
    1.0 / 5040.0,
    1.0 / 40320.0,
    1.0 / 362880.0,
    1.0 / 3628800.0,
    1.0 / 39916800.0,
    1.0 / 479001600.0,
    1.0 / 6227020800.0,
};

// tanh(z)/z = Q(z²): Taylor coefficients of z^(2k+1), exact rationals
// (numerators and denominators all < 2^53).
inline constexpr double kDetTanhC[12] = {
    1.0,
    -1.0 / 3.0,
    2.0 / 15.0,
    -17.0 / 315.0,
    62.0 / 2835.0,
    -1382.0 / 155925.0,
    21844.0 / 6081075.0,
    -929569.0 / 638512875.0,
    6404582.0 / 10854718875.0,
    -443861162.0 / 1856156927625.0,
    18888466084.0 / 194896477400625.0,
    -113927491862.0 / 2900518163668125.0,
};

/// exp(x), deterministic. See the header comment for the tails.
template <class L>
inline typename L::Vec det_exp_v(typename L::Vec x) {
  using V = typename L::Vec;
  const V magic = L::broadcast(kDetExpMagic);
  const V lo = L::broadcast(kDetExpLo);
  const V hi = L::broadcast(kDetExpHi);
  // Clamp BEFORE the reduction so exp2i's exponent arithmetic stays in
  // range; the true tails are blended in afterwards. NaN passes through
  // the clamp (both ordered compares are false) and poisons the result.
  const V xc = lane_clamp<L>(x, lo, hi);
  const V t = L::add(L::mul(xc, L::broadcast(kDetLog2E)), magic);
  const V k = L::sub(t, magic);
  const V r = L::sub(L::sub(xc, L::mul(k, L::broadcast(kDetLn2Hi))),
                     L::mul(k, L::broadcast(kDetLn2Lo)));
  V p = L::broadcast(kDetExpC[13]);
  for (int i = 12; i >= 0; --i)
    p = L::add(L::mul(p, r), L::broadcast(kDetExpC[i]));
  V res = L::mul(p, L::exp2i(t));
  res = L::select(L::less(x, lo), L::broadcast(0.0), res);
  res = L::select(L::less(hi, x),
                  L::broadcast(std::numeric_limits<double>::infinity()), res);
  return res;
}

/// tanh(z), deterministic; exact ±0 / denormal / ±1-saturation behavior.
template <class L>
inline typename L::Vec det_tanh_v(typename L::Vec z) {
  using V = typename L::Vec;
  const V zero = L::broadcast(0.0);
  const V one = L::broadcast(1.0);
  const auto neg = L::less(z, zero);
  const V az = L::select(neg, L::sub(zero, z), z);
  // Small path: z * Q(z²). For |z| < 0.25 the truncation is < 2e-20;
  // z² underflowing to +0 on denormal inputs makes Q = 1 and the result
  // the (correctly rounded) input itself.
  const V z2 = L::mul(z, z);
  V q = L::broadcast(kDetTanhC[11]);
  for (int i = 10; i >= 0; --i)
    q = L::add(L::mul(q, z2), L::broadcast(kDetTanhC[i]));
  const V small = L::mul(z, q);
  // Large path on |z| clamped to 20: beyond that e∓1 rounds to e and the
  // quotient is exactly 1.0 — the correctly rounded tanh. (Without the
  // clamp, exp would saturate to +inf and inf/inf would poison the lane.)
  const V azc = lane_min<L>(az, L::broadcast(kDetTanhSat));
  const V e = det_exp_v<L>(L::add(azc, azc));
  const V t = L::div(L::sub(e, one), L::add(e, one));
  const V big = L::select(neg, L::sub(zero, t), t);
  return L::select(L::less(az, L::broadcast(kDetTanhSmall)), small, big);
}

/// Logistic sigmoid σ(z) = 1/(1+exp(−z)), deterministic two-sided form.
template <class L>
inline typename L::Vec det_sigmoid_v(typename L::Vec z) {
  using V = typename L::Vec;
  const V zero = L::broadcast(0.0);
  const V one = L::broadcast(1.0);
  const auto neg = L::less(z, zero);
  const V az = L::select(neg, L::sub(zero, z), z);
  const V e = det_exp_v<L>(L::sub(zero, az));
  return L::div(L::select(neg, e, one), L::add(one, e));
}

// ---- batch gradient kernels over the det routines -----------------------
//
// Lane sequences are the single source of truth for the transcendental
// families' derivatives: the scalar derivative() calls the width-1
// instantiation of exactly these bodies (simd/det_math.cpp), so scalar
// engine, vector body, and vector tail agree bitwise by construction.

/// g[k] = scale[k] * tanh((x[k] - c[k]) / w[k])  — LogCosh::derivative.
template <class L>
void gradient_tanh_impl(const double* x, const double* c, const double* w,
                        const double* scale, double* g, std::size_t count) {
  std::size_t k = 0;
  for (; k + L::kWidth <= count; k += L::kWidth) {
    const typename L::Vec z =
        L::div(L::sub(L::load(x + k), L::load(c + k)), L::load(w + k));
    L::store(g + k, L::mul(L::load(scale + k), det_tanh_v<L>(z)));
  }
  for (; k < count; ++k) {
    using S = ScalarLanes;
    const double z = S::div(S::sub(x[k], c[k]), w[k]);
    g[k] = S::mul(scale[k], det_tanh_v<S>(z));
  }
}

/// g[k] = scale[k] * r / sqrt(r² + eps²), r = x[k] - c[k]
/// — SmoothAbs::derivative (sqrt is correctly rounded by IEEE 754, so
/// this form is bit-stable where libm's hypot is not).
template <class L>
void gradient_smooth_abs_impl(const double* x, const double* c,
                              const double* eps, const double* scale,
                              double* g, std::size_t count) {
  std::size_t k = 0;
  for (; k + L::kWidth <= count; k += L::kWidth) {
    const typename L::Vec r = L::sub(L::load(x + k), L::load(c + k));
    const typename L::Vec ev = L::load(eps + k);
    const typename L::Vec d =
        L::div(r, L::sqrt(L::add(L::mul(r, r), L::mul(ev, ev))));
    L::store(g + k, L::mul(L::load(scale + k), d));
  }
  for (; k < count; ++k) {
    using S = ScalarLanes;
    const double r = S::sub(x[k], c[k]);
    const double d =
        S::div(r, S::sqrt(S::add(S::mul(r, r), S::mul(eps[k], eps[k]))));
    g[k] = S::mul(scale[k], d);
  }
}

/// g[k] = scale[k] * (σ((x[k]-b[k])/w[k]) − σ((a[k]-x[k])/w[k]))
/// — SoftplusBasin::derivative.
template <class L>
void gradient_softplus_diff_impl(const double* x, const double* a,
                                 const double* b, const double* w,
                                 const double* scale, double* g,
                                 std::size_t count) {
  std::size_t k = 0;
  for (; k + L::kWidth <= count; k += L::kWidth) {
    const typename L::Vec xv = L::load(x + k);
    const typename L::Vec wv = L::load(w + k);
    const typename L::Vec sb =
        det_sigmoid_v<L>(L::div(L::sub(xv, L::load(b + k)), wv));
    const typename L::Vec sa =
        det_sigmoid_v<L>(L::div(L::sub(L::load(a + k), xv), wv));
    L::store(g + k, L::mul(L::load(scale + k), L::sub(sb, sa)));
  }
  for (; k < count; ++k) {
    using S = ScalarLanes;
    const double sb = det_sigmoid_v<S>(S::div(S::sub(x[k], b[k]), w[k]));
    const double sa = det_sigmoid_v<S>(S::div(S::sub(a[k], x[k]), w[k]));
    g[k] = S::mul(scale[k], S::sub(sb, sa));
  }
}

}  // namespace ftmao::simd_detail
