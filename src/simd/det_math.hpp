#pragma once

// Scalar entry points for the deterministic transcendental math
// (simd/det_math_impl.hpp). These are the ONLY exp/tanh/sigmoid the
// transcendental cost families (func/functions.hpp: LogCosh, SmoothAbs,
// SoftplusBasin) may call: each function here is the width-1
// instantiation of the exact lane sequence the SIMD backends run, built
// only from IEEE-pinned operations and compiled with -ffp-contract=off
// (simd/det_math.cpp), so the scalar engine, every batch engine, and
// every platform produce the same bits.
//
// Accuracy (pinned in tests/det_math_test.cpp): det_exp is within a few
// ulp of the correctly rounded exp over [-708, 709]; det_tanh within a
// few ulp everywhere (the worst lanes sit just above the small/large
// crossover at |z| = 0.25, where (e-1) cancels ~1.4 bits). Documented
// deviations from libm: det_exp saturates to +inf for x > 709 and
// flushes to +0 below -708 (no denormal outputs); NaN propagates and
// +/-0, +/-inf behave exactly as libm's.

namespace ftmao::detmath {

/// exp(x). Saturating tails at [-708, 709]; see header comment.
double det_exp(double x);

/// tanh(z). Exact +/-0 / denormal preservation, exact +/-1 saturation
/// for |z| >= 20.
double det_tanh(double z);

/// Logistic sigmoid 1/(1+exp(-z)); sigma(+/-0) = 0.5, saturates to
/// exactly 0/1 in the tails.
double det_sigmoid(double z);

/// sigma(z)*(1 - sigma(z)) — the sigmoid derivative, used for the
/// tightened SoftplusBasin Lipschitz bound. Deterministic like the rest
/// so bound values pin exactly across platforms.
double det_sigmoid_prime(double z);

/// ln(1 + q) for q in [0, 1] (atanh series on s = q/(2+q), s <= 1/3).
/// Serves the value() paths, which reduce log/log1p calls to this range.
double det_log1p01(double q);

/// log(1 + exp(z)) = max(z, 0) + ln(1 + exp(-|z|)), deterministic.
double det_softplus(double z);

// ---- family value/gradient helpers --------------------------------------
// The families delegate wholesale so every numeric path (value for
// certificates, derivative for the scalar engine) lives in the one
// -ffp-contract=off TU.

/// LogCosh value: scale * width * log(cosh((x - center)/width)).
double val_log_cosh(double x, double center, double width, double scale);

/// SmoothAbs value: scale * (sqrt(r^2 + eps^2) - eps), r = x - center.
/// (sqrt instead of the previous std::hypot: correctly rounded per
/// IEEE 754, hence bit-stable; can overflow for |r| > ~1e154, far
/// outside any admissible engine state.)
double val_smooth_abs(double x, double center, double eps, double scale);

/// SoftplusBasin value:
/// scale * width * (softplus((x-b)/width) + softplus((a-x)/width)).
double val_softplus_basin(double x, double a, double b, double width,
                          double scale);

/// LogCosh derivative: scale * tanh((x - center)/width). Identical to
/// one lane of SimdKernels::gradient_tanh by construction.
double grad_tanh(double x, double center, double width, double scale);

/// SmoothAbs derivative: scale * r / sqrt(r^2 + eps^2). One lane of
/// SimdKernels::gradient_smooth_abs.
double grad_smooth_abs(double x, double center, double eps, double scale);

/// SoftplusBasin derivative:
/// scale * (sigma((x-b)/w) - sigma((a-x)/w)). One lane of
/// SimdKernels::gradient_softplus_diff.
double grad_softplus_diff(double x, double a, double b, double width,
                          double scale);

}  // namespace ftmao::detmath
