// AVX2 (width-4) backend. Compiled with per-TU -mavx2 -ffp-contract=off
// — and deliberately WITHOUT -mfma: a fused multiply-add rounds once
// where the scalar engine rounds twice, which would break bit-identity
// in fused_step's tx - lambda*tg. Only this TU carries the flag; the
// rest of the tree stays on the default architecture, and the dispatcher
// only hands these kernels out after cpuid confirms AVX2 (so no illegal
// instruction can execute on older hardware).
//
// VBLENDVPD selects on the sign bit of each mask lane; our masks are
// full-lane all-ones/all-zeros (from VCMPPD or precomputed), for which
// sign-bit select and full bit select agree.

#include <immintrin.h>

#include "simd/lanes_impl.hpp"
#include "simd/simd.hpp"

namespace ftmao {

namespace {

struct Avx2Lanes {
  static constexpr std::size_t kWidth = 4;
  using Vec = __m256d;
  static Vec load(const double* p) { return _mm256_loadu_pd(p); }
  static void store(double* p, Vec v) { _mm256_storeu_pd(p, v); }
  static Vec broadcast(double x) { return _mm256_set1_pd(x); }
  static Vec add(Vec a, Vec b) { return _mm256_add_pd(a, b); }
  static Vec sub(Vec a, Vec b) { return _mm256_sub_pd(a, b); }
  static Vec mul(Vec a, Vec b) { return _mm256_mul_pd(a, b); }
  static Vec div(Vec a, Vec b) { return _mm256_div_pd(a, b); }
  static Vec less(Vec a, Vec b) { return _mm256_cmp_pd(a, b, _CMP_LT_OQ); }
  static Vec select(Vec m, Vec t, Vec f) { return _mm256_blendv_pd(f, t, m); }
  static Vec bitselect(Vec m, Vec t, Vec f) { return select(m, t, f); }
  static Vec sqrt(Vec a) { return _mm256_sqrt_pd(a); }
  static Vec exp2i(Vec t) {
    const __m256i b =
        _mm256_add_epi64(_mm256_castpd_si256(t), _mm256_set1_epi64x(1023));
    return _mm256_castsi256_pd(_mm256_slli_epi64(b, 52));
  }
};

}  // namespace

const SimdKernels& simd_backend_avx2() {
  static const SimdKernels kernels =
      simd_detail::make_kernels<Avx2Lanes>(SimdIsa::kAvx2, "avx2");
  return kernels;
}

}  // namespace ftmao
