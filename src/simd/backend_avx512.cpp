// AVX-512F (width-8) backend. Compiled with per-TU -mavx512f
// -ffp-contract=off — and, like the AVX2 TU, deliberately WITHOUT FMA:
// a fused multiply-add rounds once where the scalar engine rounds
// twice, which would break bit-identity in fused_step's tx - lambda*tg.
// Only this TU carries the flag; the dispatcher hands these kernels out
// only after cpuid confirms avx512f, so no illegal instruction can
// execute on narrower hardware.
//
// AVX-512 compares produce a mask *register* (__mmask8), not a vector.
// The DoubleLanes policy contract represents masks as stored
// all-ones/all-zeros double lanes (so precomputed delivery masks blend
// through the same path as fresh compares), so this policy materializes
// compare masks into vectors with _mm512_mask_blend_pd and rehydrates
// stored masks with an integer nonzero test (_mm512_cmpneq_epi64_mask —
// plain AVX-512F, and exactly ScalarLanes::bitselect's `bits != 0`
// criterion). Both directions are pure bit selection, so the selected
// values — the only thing that reaches memory — are bit-identical to
// every other backend.

#include <immintrin.h>

#include "simd/lanes_impl.hpp"
#include "simd/simd.hpp"

namespace ftmao {

namespace {

struct Avx512Lanes {
  static constexpr std::size_t kWidth = 8;
  using Vec = __m512d;
  static Vec load(const double* p) { return _mm512_loadu_pd(p); }
  static void store(double* p, Vec v) { _mm512_storeu_pd(p, v); }
  static Vec broadcast(double x) { return _mm512_set1_pd(x); }
  static Vec add(Vec a, Vec b) { return _mm512_add_pd(a, b); }
  static Vec sub(Vec a, Vec b) { return _mm512_sub_pd(a, b); }
  static Vec mul(Vec a, Vec b) { return _mm512_mul_pd(a, b); }
  static Vec div(Vec a, Vec b) { return _mm512_div_pd(a, b); }
  static Vec mask_to_vec(__mmask8 m) {
    return _mm512_mask_blend_pd(m, _mm512_setzero_pd(),
                                _mm512_castsi512_pd(_mm512_set1_epi64(-1)));
  }
  static __mmask8 vec_to_mask(Vec m) {
    return _mm512_cmpneq_epi64_mask(_mm512_castpd_si512(m),
                                    _mm512_setzero_si512());
  }
  static Vec less(Vec a, Vec b) {
    return mask_to_vec(_mm512_cmp_pd_mask(a, b, _CMP_LT_OQ));
  }
  static Vec select(Vec m, Vec t, Vec f) {
    return _mm512_mask_blend_pd(vec_to_mask(m), f, t);
  }
  static Vec bitselect(Vec m, Vec t, Vec f) { return select(m, t, f); }
  // The maskz (all-lanes-kept) variants below emit the same VSQRTPD /
  // VPSLLQ as the plain intrinsics, but avoid the _mm512_undefined_*
  // merge operand in gcc's headers, which trips -Wmaybe-uninitialized
  // noise on every build.
  static Vec sqrt(Vec a) { return _mm512_maskz_sqrt_pd(0xff, a); }
  static Vec exp2i(Vec t) {
    const __m512i b =
        _mm512_add_epi64(_mm512_castpd_si512(t), _mm512_set1_epi64(1023));
    return _mm512_castsi512_pd(_mm512_maskz_slli_epi64(0xff, b, 52));
  }
};

}  // namespace

const SimdKernels& simd_backend_avx512() {
  static const SimdKernels kernels =
      simd_detail::make_kernels<Avx512Lanes>(SimdIsa::kAvx512, "avx512");
  return kernels;
}

}  // namespace ftmao
