#pragma once

// Width-agnostic kernel bodies for the SIMD backends.
//
// A backend TU defines a `DoubleLanes` policy type and calls
// make_kernels<L>() to obtain its SimdKernels table. The policy supplies:
//
//   static constexpr std::size_t kWidth;   // doubles per vector
//   using Vec;                             // vector register type
//   static Vec  load(const double*);       // unaligned load of kWidth
//   static void store(double*, Vec);       // unaligned store of kWidth
//   static Vec  broadcast(double);
//   static Vec  add(Vec, Vec); sub(Vec, Vec); mul(Vec, Vec); div(Vec, Vec);
//   static Vec  less(Vec a, Vec b);        // ordered-quiet a < b, all-ones
//                                          // lane mask as Vec bits
//   static Vec  select(Vec m, Vec t, Vec f);     // m ? t : f, m from less()
//   static Vec  bitselect(Vec m, Vec t, Vec f);  // m ? t : f, m a *stored*
//                                                // all-ones/all-zeros mask
//   static Vec  sqrt(Vec);                 // IEEE 754 square root — the
//                                          // standard requires correct
//                                          // rounding, so hardware SQRTPD
//                                          // and std::sqrt agree bitwise
//   static Vec  exp2i(Vec t);              // 2^k for t = k + 1.5*2^52:
//                                          // ((bits(t) + 1023) << 52)
//                                          // reinterpreted as double —
//                                          // pure integer lane ops (see
//                                          // simd/det_math_impl.hpp)
//
// Every kernel body below performs the identical IEEE operation sequence
// per lane in every instantiation; vector tails reuse the scalar policy
// (ScalarLanes) so a lane computed in the tail is bit-identical to the
// same lane computed in a full vector. That — plus the conditional-swap
// comparator and first-argument-wins min/max (simd/simd.hpp, rules 2
// and 3) — is the whole cross-backend determinism argument.
//
// Instantiate only inside the backend's own TU (each policy type is
// TU-local, so template instantiations cannot collide across differently
// flagged objects).

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "simd/simd.hpp"

namespace ftmao::simd_detail {

/// The width-1 policy: plain doubles, branch-free selects. Used both as
/// the scalar backend's policy and as every wider backend's tail path.
struct ScalarLanes {
  static constexpr std::size_t kWidth = 1;
  using Vec = double;
  static Vec load(const double* p) { return *p; }
  static void store(double* p, Vec v) { *p = v; }
  static Vec broadcast(double x) { return x; }
  static Vec add(Vec a, Vec b) { return a + b; }
  static Vec sub(Vec a, Vec b) { return a - b; }
  static Vec mul(Vec a, Vec b) { return a * b; }
  static Vec div(Vec a, Vec b) { return a / b; }
  // Mask lanes are represented by their truth value; select() branches
  // on it. The wider policies use bit masks + blends — same selected
  // values, so results are bit-identical.
  static bool less(Vec a, Vec b) { return a < b; }
  static Vec select(bool m, Vec t, Vec f) { return m ? t : f; }
  // Stored masks are all-ones or all-zeros doubles.
  static Vec bitselect(Vec m, Vec t, Vec f) {
    return std::bit_cast<std::uint64_t>(m) != 0 ? t : f;
  }
  static Vec sqrt(Vec a) { return std::sqrt(a); }
  static Vec exp2i(Vec t) {
    return std::bit_cast<double>(
        (std::bit_cast<std::uint64_t>(t) + 1023u) << 52u);
  }
};

// std::min / std::max tie semantics (first argument wins on equality),
// expressed with the policy's compare+select so every backend agrees
// bitwise — including on (+0.0, -0.0), where hardware MINPD/MAXPD would
// return the second operand instead.
template <class L>
inline typename L::Vec lane_min(typename L::Vec a, typename L::Vec b) {
  return L::select(L::less(b, a), b, a);
}
template <class L>
inline typename L::Vec lane_max(typename L::Vec a, typename L::Vec b) {
  return L::select(L::less(a, b), b, a);
}
// std::clamp(v, lo, hi) == lane_min(lane_max(v, lo), hi) bitwise for
// lo <= hi (ties resolve identically because both pick the first
// argument; v < lo and hi < v cannot hold simultaneously).
template <class L>
inline typename L::Vec lane_clamp(typename L::Vec v, typename L::Vec lo,
                                  typename L::Vec hi) {
  return lane_min<L>(lane_max<L>(v, lo), hi);
}

}  // namespace ftmao::simd_detail

// Deterministic exp/tanh/sigmoid and the transcendental gradient kernels.
// Lives in its own header for readability; it extends ftmao::simd_detail
// and uses the lane helpers above, so it must be included exactly here.
#include "simd/det_math_impl.hpp"  // NOLINT(misc-include-cleaner)

namespace ftmao::simd_detail {

template <class L>
void sort_network_impl(double* data, std::size_t stride,
                       const ComparatorPair* pairs, std::size_t num_pairs,
                       std::size_t count) {
  for (std::size_t p = 0; p < num_pairs; ++p) {
    double* __restrict a = data + pairs[p].first * stride;
    double* __restrict b = data + pairs[p].second * stride;
    std::size_t k = 0;
    for (; k + L::kWidth <= count; k += L::kWidth) {
      const typename L::Vec va = L::load(a + k);
      const typename L::Vec vb = L::load(b + k);
      const auto swap = L::less(vb, va);  // conditional swap: b < a
      L::store(a + k, L::select(swap, vb, va));
      L::store(b + k, L::select(swap, va, vb));
    }
    for (; k < count; ++k) {
      const double va = a[k];
      const double vb = b[k];
      const bool swap = vb < va;
      a[k] = swap ? vb : va;
      b[k] = swap ? va : vb;
    }
  }
}

template <class L>
void trim_midpoint_impl(const double* ys, const double* yl, double* out,
                        std::size_t count) {
  const typename L::Vec two = L::broadcast(2.0);
  std::size_t k = 0;
  for (; k + L::kWidth <= count; k += L::kWidth) {
    const typename L::Vec s = L::load(ys + k);
    const typename L::Vec l = L::load(yl + k);
    L::store(out + k, L::add(s, L::div(L::sub(l, s), two)));
  }
  for (; k < count; ++k) out[k] = ys[k] + (yl[k] - ys[k]) / 2.0;
}

template <class L>
void accumulate_rows_impl(double* acc, const double* row, std::size_t count) {
  std::size_t k = 0;
  for (; k + L::kWidth <= count; k += L::kWidth)
    L::store(acc + k, L::add(L::load(acc + k), L::load(row + k)));
  for (; k < count; ++k) acc[k] += row[k];
}

template <class L>
void divide_rows_impl(double* out, double divisor, std::size_t count) {
  const typename L::Vec d = L::broadcast(divisor);
  std::size_t k = 0;
  for (; k + L::kWidth <= count; k += L::kWidth)
    L::store(out + k, L::div(L::load(out + k), d));
  for (; k < count; ++k) out[k] /= divisor;
}

template <class L>
void gradient_clamp_impl(const double* x, const double* a, const double* b,
                         const double* lo, const double* hi,
                         const double* scale, double* g, std::size_t count) {
  const typename L::Vec zero = L::broadcast(0.0);
  std::size_t k = 0;
  for (; k + L::kWidth <= count; k += L::kWidth) {
    const typename L::Vec xv = L::load(x + k);
    const typename L::Vec below = lane_min<L>(L::sub(xv, L::load(a + k)), zero);
    const typename L::Vec above = lane_max<L>(L::sub(xv, L::load(b + k)), zero);
    const typename L::Vec r = lane_clamp<L>(L::add(below, above),
                                            L::load(lo + k), L::load(hi + k));
    L::store(g + k, L::mul(L::load(scale + k), r));
  }
  for (; k < count; ++k) {
    using S = ScalarLanes;
    const double below = lane_min<S>(x[k] - a[k], 0.0);
    const double above = lane_max<S>(x[k] - b[k], 0.0);
    g[k] = scale[k] * lane_clamp<S>(below + above, lo[k], hi[k]);
  }
}

template <class L>
void fused_step_impl(const double* tx, const double* tg, const double* lambda,
                     const double* clo, const double* chi,
                     const double* pe_mask, double* x, double* pe,
                     std::size_t count) {
  std::size_t k = 0;
  for (; k + L::kWidth <= count; k += L::kWidth) {
    const typename L::Vec u =
        L::sub(L::load(tx + k), L::mul(L::load(lambda + k), L::load(tg + k)));
    const typename L::Vec next =
        lane_clamp<L>(u, L::load(clo + k), L::load(chi + k));
    L::store(x + k, next);
    L::store(pe + k, L::bitselect(L::load(pe_mask + k), L::sub(next, u),
                                  L::broadcast(0.0)));
  }
  for (; k < count; ++k) {
    using S = ScalarLanes;
    const double u = tx[k] - lambda[k] * tg[k];
    const double next = lane_clamp<S>(u, clo[k], chi[k]);
    x[k] = next;
    pe[k] = S::bitselect(pe_mask[k], next - u, 0.0);
  }
}

template <class L>
void masked_blend_impl(const double* mask, const double* px, const double* pg,
                       const double* dx, const double* dg, double* outx,
                       double* outg, std::size_t count) {
  std::size_t k = 0;
  for (; k + L::kWidth <= count; k += L::kWidth) {
    const typename L::Vec m = L::load(mask + k);
    L::store(outx + k, L::bitselect(m, L::load(px + k), L::load(dx + k)));
    L::store(outg + k, L::bitselect(m, L::load(pg + k), L::load(dg + k)));
  }
  for (; k < count; ++k) {
    using S = ScalarLanes;
    outx[k] = S::bitselect(mask[k], px[k], dx[k]);
    outg[k] = S::bitselect(mask[k], pg[k], dg[k]);
  }
}

/// Builds the backend's kernel table. All pointers reference the TU-local
/// instantiations for policy L.
template <class L>
SimdKernels make_kernels(SimdIsa isa, const char* name) {
  SimdKernels k;
  k.isa = isa;
  k.name = name;
  k.width = L::kWidth;
  k.sort_network = &sort_network_impl<L>;
  k.trim_midpoint = &trim_midpoint_impl<L>;
  k.accumulate_rows = &accumulate_rows_impl<L>;
  k.divide_rows = &divide_rows_impl<L>;
  k.gradient_clamp = &gradient_clamp_impl<L>;
  k.gradient_tanh = &gradient_tanh_impl<L>;
  k.gradient_smooth_abs = &gradient_smooth_abs_impl<L>;
  k.gradient_softplus_diff = &gradient_softplus_diff_impl<L>;
  k.fused_step = &fused_step_impl<L>;
  k.masked_blend = &masked_blend_impl<L>;
  return k;
}

}  // namespace ftmao::simd_detail
