// Scalar (width-1) backend: the portable reference every wider backend
// must match bit-for-bit. Compiled with the tree's default flags plus
// -ffp-contract=off: this TU *is* the determinism baseline, and on
// targets whose baseline ISA has fused multiply-add (aarch64) the
// default contraction could otherwise fuse a*b+c inside the det-math
// polynomials, silently diverging from the x86 backends.

#include "simd/lanes_impl.hpp"
#include "simd/simd.hpp"

namespace ftmao {

const SimdKernels& simd_backend_scalar() {
  static const SimdKernels kernels = simd_detail::make_kernels<
      simd_detail::ScalarLanes>(SimdIsa::kScalar, "scalar");
  return kernels;
}

}  // namespace ftmao
