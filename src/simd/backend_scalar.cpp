// Scalar (width-1) backend: the portable reference every wider backend
// must match bit-for-bit. Compiled with the tree's default flags — this
// TU *is* the determinism baseline, so it gets no special options.

#include "simd/lanes_impl.hpp"
#include "simd/simd.hpp"

namespace ftmao {

const SimdKernels& simd_backend_scalar() {
  static const SimdKernels kernels = simd_detail::make_kernels<
      simd_detail::ScalarLanes>(SimdIsa::kScalar, "scalar");
  return kernels;
}

}  // namespace ftmao
