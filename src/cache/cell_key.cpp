#include "cache/cell_key.hpp"

#include <charconv>

namespace ftmao {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

// The second 64-bit lane hashes the same bytes from a different basis;
// xoring a fixed odd constant into the FNV offset de-correlates the two
// streams without inventing a second hash function.
constexpr std::uint64_t kHiBasisTweak = 0x9e3779b97f4a7c15ull;

std::uint64_t splitmix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

}  // namespace

std::uint64_t cache_hash64(const std::string& bytes, std::uint64_t basis) {
  std::uint64_t h = basis;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return splitmix64(h);
}

std::string cache_canon_double(double v) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  return ec == std::errc{} ? std::string(buf, end) : std::string("?");
}

std::string CellKey::hex() const {
  static const char digits[] = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[15 - i] = digits[(hi >> (4 * i)) & 0xf];
    out[31 - i] = digits[(lo >> (4 * i)) & 0xf];
  }
  return out;
}

CellKey make_cell_key(const std::string& canonical_spec,
                      std::uint64_t schema_rev) {
  CellKey key;
  key.spec = "rev=" + std::to_string(schema_rev) + ";" + canonical_spec;
  key.lo = cache_hash64(key.spec, kFnvOffset);
  key.hi = cache_hash64(key.spec, kFnvOffset ^ kHiBasisTweak);
  return key;
}

}  // namespace ftmao
