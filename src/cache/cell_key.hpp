#pragma once

// Content-addressed cache keys for memoized simulation cells.
//
// A cell's identity is its *canonical spec string*: an explicit, ordered
// rendering of every knob that can influence the numeric result — system
// size, dimension, attack configuration, cost-family mix, constraint box,
// seeds, rounds, step schedule, delay/fault model — prefixed with the
// engine schema revision below. Knobs that provably cannot change the
// output are deliberately absent: thread count, batch size, SIMD backend,
// and scalar-vs-batched engine all produce bit-identical results (the
// per-backend/per-chunking equivalence suites pin this), so one key is
// sound across every execution strategy.
//
// The 128-bit hash of the spec is the cell's *address* (map key, disk
// file name); the spec itself is carried alongside and echoed into every
// persistent record, so equality checks compare the full identity and a
// hash collision can never alias two different cells.

#include <cstdint>
#include <string>

namespace ftmao {

/// Engine numeric-schema revision. Bump this on ANY change that can alter
/// the bits an engine produces — trim kernels, RNG streams, scenario
/// construction, step schedules, metric definitions, aggregation order.
/// The revision is mixed into every cell key, so records written under an
/// older schema simply become unreachable (a miss, never a wrong answer).
/// Rev 2: LogCosh/SmoothAbs/SoftplusBasin derivatives moved from libm to
/// the deterministic polynomial kernels (simd/det_math_impl.hpp) — same
/// functions, different (now platform-pinned) bits.
inline constexpr std::uint64_t kEngineSchemaRev = 2;

/// FNV-1a over `bytes` starting from `basis`, splitmix64-finalized so
/// short inputs still avalanche. Stable across platforms by construction.
std::uint64_t cache_hash64(const std::string& bytes, std::uint64_t basis);

/// Canonical rendering of a double for spec strings: shortest
/// round-trippable form (std::to_chars), so equal bits always render
/// identically and distinct bits never collapse.
std::string cache_canon_double(double v);

struct CellKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  std::string spec;  ///< canonical spec (with rev prefix) — the identity

  /// 32 lowercase hex chars: hi then lo, zero-padded. Used as the disk
  /// record file name.
  std::string hex() const;

  friend bool operator==(const CellKey&, const CellKey&) = default;
};

/// Keys `canonical_spec` under `schema_rev` (tests pass explicit old/new
/// revisions to prove cross-version records cannot collide).
CellKey make_cell_key(const std::string& canonical_spec,
                      std::uint64_t schema_rev = kEngineSchemaRev);

}  // namespace ftmao
