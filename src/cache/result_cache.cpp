#include "cache/result_cache.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <thread>
#include <utility>

#include "common/contracts.hpp"

namespace ftmao {

namespace {

// Record layout (all integers explicit little-endian):
//   magic "FTMAOC1\n" | key.hi | key.lo | spec_size | spec bytes
//   | payload_size | payload bytes | checksum(spec + payload)
constexpr char kMagic[8] = {'F', 'T', 'M', 'A', 'O', 'C', '1', '\n'};
constexpr std::uint64_t kChecksumBasis = 1469598103934665603ull;

void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

std::uint64_t read_u64(const std::string& bytes, std::size_t pos) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(bytes[pos + i]))
         << (8 * i);
  return v;
}

}  // namespace

ResultCache::ResultCache(CacheConfig config) : config_(std::move(config)) {}

ResultCache::Shard& ResultCache::shard_for(const CellKey& key) {
  return shards_[key.lo % kShards];
}

std::string ResultCache::record_path(const CellKey& key) const {
  return config_.dir + "/" + key.hex() + ".ftc";
}

bool ResultCache::memory_insert(const CellKey& key,
                                const std::string& payload) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto found = shard.map.find(std::string_view(key.spec));
  if (found != shard.map.end()) {
    shard.lru.splice(shard.lru.begin(), shard.lru, found->second);
    return false;
  }
  shard.lru.push_front(Entry{key.spec, payload});
  const auto it = shard.lru.begin();
  shard.map.emplace(std::string_view(it->spec), it);
  shard.bytes += it->spec.size() + it->payload.size();

  // Size-capped LRU: evict from the cold end until this shard is back
  // under its slice of the budget. The entry just inserted is never
  // evicted, even if it alone exceeds the slice.
  const std::size_t budget = config_.max_memory_bytes / kShards;
  while (shard.bytes > budget && shard.lru.size() > 1) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.spec.size() + victim.payload.size();
    shard.map.erase(std::string_view(victim.spec));
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

std::optional<std::string> ResultCache::lookup(const CellKey& key) {
  Shard& shard = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto found = shard.map.find(std::string_view(key.spec));
    if (found != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, found->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return found->second->payload;
    }
  }
  if (!config_.dir.empty()) {
    if (std::optional<std::string> payload = read_record(key)) {
      memory_insert(key, *payload);
      hits_.fetch_add(1, std::memory_order_relaxed);
      disk_hits_.fetch_add(1, std::memory_order_relaxed);
      return payload;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void ResultCache::insert(const CellKey& key, const std::string& payload) {
  if (!memory_insert(key, payload)) return;
  inserts_.fetch_add(1, std::memory_order_relaxed);
  if (!config_.dir.empty()) write_record(key, payload);
}

std::optional<std::string> ResultCache::read_record(const CellKey& key) {
  std::string bytes;
  {
    std::ifstream is(record_path(key), std::ios::binary);
    if (!is) return std::nullopt;  // absent: a plain miss, not an error
    std::ostringstream os;
    os << is.rdbuf();
    bytes = os.str();
  }

  // Every structural defect — short file, wrong magic, key/spec mismatch,
  // bad sizes, checksum failure — degrades to a miss.
  const auto defect = [this] {
    disk_errors_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  };
  std::size_t pos = 0;
  if (bytes.size() < sizeof(kMagic) + 3 * 8) return defect();
  if (bytes.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0)
    return defect();
  pos = sizeof(kMagic);
  if (read_u64(bytes, pos) != key.hi || read_u64(bytes, pos + 8) != key.lo)
    return defect();
  pos += 16;
  const std::uint64_t spec_size = read_u64(bytes, pos);
  pos += 8;
  if (spec_size > bytes.size() - pos) return defect();
  if (bytes.compare(pos, spec_size, key.spec) != 0 ||
      spec_size != key.spec.size())
    return defect();
  pos += spec_size;
  if (bytes.size() - pos < 8) return defect();
  const std::uint64_t payload_size = read_u64(bytes, pos);
  pos += 8;
  if (payload_size > bytes.size() - pos || bytes.size() - pos != payload_size + 8)
    return defect();
  std::string payload = bytes.substr(pos, payload_size);
  pos += payload_size;
  if (read_u64(bytes, pos) != cache_hash64(key.spec + payload, kChecksumBasis))
    return defect();
  return payload;
}

void ResultCache::write_record(const CellKey& key,
                               const std::string& payload) {
  // Failures here (unwritable dir, full disk) must never fail the run:
  // the cache silently degrades to compute-only and counts the defect.
  try {
    std::filesystem::create_directories(config_.dir);
    std::string record;
    record.reserve(sizeof(kMagic) + 40 + key.spec.size() + payload.size());
    record.append(kMagic, sizeof(kMagic));
    append_u64(record, key.hi);
    append_u64(record, key.lo);
    append_u64(record, key.spec.size());
    record += key.spec;
    append_u64(record, payload.size());
    record += payload;
    append_u64(record, cache_hash64(key.spec + payload, kChecksumBasis));

    // Temp-file + atomic rename: a concurrent reader (or a crashed
    // writer) can only ever observe a whole record or no record.
    const std::string path = record_path(key);
    const std::string tmp =
        path + ".tmp." +
        std::to_string(
            std::hash<std::thread::id>{}(std::this_thread::get_id()));
    {
      std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
      if (!os) throw std::runtime_error("cannot open " + tmp);
      os.write(record.data(), static_cast<std::streamsize>(record.size()));
      if (!os.flush()) throw std::runtime_error("short write to " + tmp);
    }
    std::filesystem::rename(tmp, path);
  } catch (const std::exception&) {
    disk_errors_.fetch_add(1, std::memory_order_relaxed);
  }
}

CacheStats ResultCache::stats() const {
  CacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.disk_hits = disk_hits_.load(std::memory_order_relaxed);
  s.disk_errors = disk_errors_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    // const_cast-free snapshot: the mutex is mutable state of a const
    // object in spirit; lock through a non-const view of the array.
    Shard& mutable_shard = const_cast<Shard&>(shard);
    std::lock_guard<std::mutex> lock(mutable_shard.mutex);
    s.memory_bytes += shard.bytes;
    s.entries += shard.lru.size();
  }
  return s;
}

std::string cache_stats_line(const CacheStats& s) {
  std::ostringstream os;
  os << "cache: hits=" << s.hits << " misses=" << s.misses
     << " inserts=" << s.inserts << " evictions=" << s.evictions
     << " mem_bytes=" << s.memory_bytes << " entries=" << s.entries
     << " disk_hits=" << s.disk_hits << " disk_errors=" << s.disk_errors;
  return os.str();
}

void PayloadWriter::put_u64(std::uint64_t v) { append_u64(bytes_, v); }

void PayloadWriter::put_double(double v) {
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(bits);
}

void PayloadWriter::put_string(const std::string& s) {
  put_u64(s.size());
  bytes_ += s;
}

std::uint64_t PayloadReader::get_u64() {
  if (bytes_.size() - pos_ < 8)
    throw ContractViolation("cache payload: truncated u64");
  const std::uint64_t v = read_u64(bytes_, pos_);
  pos_ += 8;
  return v;
}

double PayloadReader::get_double() {
  const std::uint64_t bits = get_u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string PayloadReader::get_string() {
  const std::uint64_t size = get_u64();
  if (size > bytes_.size() - pos_)
    throw ContractViolation("cache payload: truncated string");
  std::string s = bytes_.substr(pos_, size);
  pos_ += size;
  return s;
}

}  // namespace ftmao
