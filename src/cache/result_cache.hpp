#pragma once

// Content-addressed result cache: a sharded in-memory LRU store with an
// optional persistent on-disk tier, keyed by cache/cell_key.hpp keys.
//
// Soundness rests on two pillars. First, every engine in this tree is
// bit-identical across thread counts, batch sizes, scalar/batched paths,
// and SIMD backends, so a cell's result is a pure function of its
// canonical spec — one cached value serves every execution strategy.
// Second, the key's spec string is stored with every entry (in memory as
// the map key, on disk as a full echo inside the record), so a lookup
// only ever returns a payload whose complete identity matches — a hash
// collision degrades to a miss, never to a wrong answer.
//
// Disk records are defensive by construction: magic, key echo, spec echo,
// sizes, and an FNV checksum over the payload are all verified on read,
// and any corrupt, truncated, or mismatched record is treated as a miss
// (counted in `disk_errors`), never as an error. Writes go through a
// temp-file + atomic rename, so concurrent writers (sweep shards sharing
// one --cache-dir) can only ever publish whole records.

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "cache/cell_key.hpp"

namespace ftmao {

struct CacheConfig {
  /// Directory for the persistent tier; empty = in-memory only. Created
  /// on first insert if missing.
  std::string dir;

  /// In-memory LRU capacity in bytes (spec + payload are both counted).
  /// The disk tier is not size-capped: records are small, immutable, and
  /// shared across processes, so eviction policy belongs to the operator.
  std::size_t max_memory_bytes = 256ull << 20;
};

/// Monotonic counters, snapshot via ResultCache::stats().
struct CacheStats {
  std::uint64_t hits = 0;        ///< lookups served (memory or disk)
  std::uint64_t misses = 0;      ///< lookups that found nothing usable
  std::uint64_t inserts = 0;     ///< new entries stored
  std::uint64_t evictions = 0;   ///< LRU entries dropped from memory
  std::uint64_t disk_hits = 0;   ///< hits that were faulted in from disk
  std::uint64_t disk_errors = 0; ///< corrupt/truncated/mismatched records
  std::uint64_t memory_bytes = 0;  ///< resident spec+payload bytes
  std::uint64_t entries = 0;       ///< resident entry count
};

class ResultCache {
 public:
  explicit ResultCache(CacheConfig config);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// The payload stored under `key`, or nullopt. Thread-safe; a hit
  /// refreshes the entry's LRU position.
  std::optional<std::string> lookup(const CellKey& key);

  /// Stores `payload` under `key` (memory, and disk when configured).
  /// Idempotent: re-inserting an existing key refreshes LRU and rewrites
  /// nothing. Thread-safe.
  void insert(const CellKey& key, const std::string& payload);

  CacheStats stats() const;

  const CacheConfig& config() const { return config_; }

 private:
  struct Entry {
    std::string spec;  // also the map key; owned by the list node
    std::string payload;
  };
  struct Shard {
    std::mutex mutex;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<std::string_view, std::list<Entry>::iterator> map;
    std::size_t bytes = 0;
  };

  Shard& shard_for(const CellKey& key);
  std::string record_path(const CellKey& key) const;
  /// Verified read of a disk record; nullopt (+ disk_errors) on any defect.
  std::optional<std::string> read_record(const CellKey& key);
  void write_record(const CellKey& key, const std::string& payload);
  /// Inserts into the shard map under its lock; returns false if present.
  bool memory_insert(const CellKey& key, const std::string& payload);

  CacheConfig config_;
  static constexpr std::size_t kShards = 16;
  std::array<Shard, kShards> shards_;

  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> inserts_{0};
  mutable std::atomic<std::uint64_t> evictions_{0};
  mutable std::atomic<std::uint64_t> disk_hits_{0};
  mutable std::atomic<std::uint64_t> disk_errors_{0};
};

/// "cache: hits=... misses=... inserts=... evictions=... mem_bytes=...
/// disk_hits=... disk_errors=..." — the one-line counter summary the
/// sweep/certify tools print.
std::string cache_stats_line(const CacheStats& stats);

// --- payload codec ----------------------------------------------------
//
// Payloads are flat byte strings written and read field-by-field in an
// explicit little-endian order (independent of host endianness). Readers
// throw ContractViolation on any overrun; cache consumers catch it and
// treat the record as a miss.

class PayloadWriter {
 public:
  void put_u64(std::uint64_t v);
  void put_double(double v);  ///< bit-exact (round-trips every payload)
  void put_bool(bool v) { put_u64(v ? 1 : 0); }
  void put_string(const std::string& s);

  const std::string& bytes() const { return bytes_; }

 private:
  std::string bytes_;
};

class PayloadReader {
 public:
  explicit PayloadReader(const std::string& bytes) : bytes_(bytes) {}

  std::uint64_t get_u64();
  double get_double();
  bool get_bool() { return get_u64() != 0; }
  std::string get_string();

  /// True when every byte has been consumed (decoders check this to
  /// reject payloads with trailing garbage).
  bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  const std::string& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace ftmao
