#pragma once

// SBG over incomplete directed networks (the paper's open problem; the
// Part IV report [25] studies this setting).
//
// Each agent trims over its in-neighbourhood only: D = {own value} +
// {values of in-neighbours}, so it needs in-degree >= 2f for the f-trim to
// be defined. The complete-network guarantees do NOT automatically carry
// over — this module exists to measure empirically which topologies
// preserve consensus and how much optimality degrades. The Y used for the
// distance metric is the complete-network valid set (the best any
// algorithm in this family could promise), so max_dist_to_y reads as the
// "optimality gap vs complete network".

#include <vector>

#include "common/interval.hpp"
#include "common/series.hpp"
#include "common/types.hpp"
#include "core/payload.hpp"
#include "core/step_size.hpp"
#include "func/scalar_function.hpp"
#include "graph/topology.hpp"
#include "net/sync.hpp"
#include "sim/scenario.hpp"

namespace ftmao {

/// A correct agent in the graph variant: trims over own value + whatever
/// arrived from in-neighbours (padded with the default for in-neighbours
/// that stayed silent).
class GraphSbgAgent final : public SyncNode<SbgPayload> {
 public:
  GraphSbgAgent(AgentId id, ScalarFunctionPtr cost, double initial_state,
                const StepSchedule& schedule, std::size_t in_degree,
                std::size_t f, SbgPayload default_payload = {});

  SbgPayload broadcast(Round t) override;
  void step(Round t, std::span<const Received<SbgPayload>> inbox) override;

  AgentId id() const { return id_; }
  double state() const { return state_; }

 private:
  AgentId id_;
  ScalarFunctionPtr cost_;
  double state_;
  const StepSchedule* schedule_;
  std::size_t in_degree_;
  std::size_t f_;
  SbgPayload default_payload_;
};

struct GraphScenario {
  Topology topology{1};
  std::size_t f = 0;
  std::vector<std::size_t> faulty;
  std::vector<ScalarFunctionPtr> functions;
  std::vector<double> initial_states;
  AttackConfig attack;
  StepConfig step;
  std::size_t rounds = 2000;
  std::uint64_t seed = 1;

  void validate() const;
};

struct GraphRunMetrics {
  Series disagreement;
  Series max_dist_to_y;  ///< vs the complete-network valid set (reference)
  std::vector<double> final_states;
  Interval optima{0.0};
};

GraphRunMetrics run_graph_sbg(const GraphScenario& scenario);

}  // namespace ftmao
