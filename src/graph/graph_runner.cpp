#include "graph/graph_runner.hpp"

#include <algorithm>
#include <memory>

#include "common/contracts.hpp"
#include "core/valid_set.hpp"
#include "trim/trim.hpp"

namespace ftmao {

GraphSbgAgent::GraphSbgAgent(AgentId id, ScalarFunctionPtr cost,
                             double initial_state, const StepSchedule& schedule,
                             std::size_t in_degree, std::size_t f,
                             SbgPayload default_payload)
    : id_(id),
      cost_(std::move(cost)),
      state_(initial_state),
      schedule_(&schedule),
      in_degree_(in_degree),
      f_(f),
      default_payload_(default_payload) {
  FTMAO_EXPECTS(cost_ != nullptr);
  // The f-trim over own value + in-neighbours needs >= 2f + 1 entries.
  FTMAO_EXPECTS(in_degree_ + 1 >= 2 * f_ + 1);
}

SbgPayload GraphSbgAgent::broadcast(Round t) {
  FTMAO_EXPECTS(t.value >= 1);
  return SbgPayload{state_, cost_->derivative(state_)};
}

void GraphSbgAgent::step(Round t, std::span<const Received<SbgPayload>> inbox) {
  FTMAO_EXPECTS(t.value >= 1);
  FTMAO_EXPECTS(inbox.size() <= in_degree_);
  std::vector<double> states, gradients;
  states.reserve(in_degree_ + 1);
  gradients.reserve(in_degree_ + 1);
  states.push_back(state_);
  gradients.push_back(cost_->derivative(state_));
  for (const auto& msg : inbox) {
    states.push_back(msg.payload.state);
    gradients.push_back(msg.payload.gradient);
  }
  for (std::size_t i = inbox.size(); i < in_degree_; ++i) {
    states.push_back(default_payload_.state);
    gradients.push_back(default_payload_.gradient);
  }
  const double lambda = schedule_->at(t.value - 1);
  state_ = trim_value(states, f_) - lambda * trim_value(gradients, f_);
}

void GraphScenario::validate() const {
  const std::size_t n = topology.n();
  FTMAO_EXPECTS(n > 3 * f);
  FTMAO_EXPECTS(faulty.size() <= f);
  FTMAO_EXPECTS(functions.size() == n);
  FTMAO_EXPECTS(initial_states.size() == n);
  FTMAO_EXPECTS(rounds >= 1);
  FTMAO_EXPECTS(topology.supports_trim(f));
  for (std::size_t i : faulty) FTMAO_EXPECTS(i < n);
}

GraphRunMetrics run_graph_sbg(const GraphScenario& scenario) {
  scenario.validate();
  const std::size_t n = scenario.topology.n();
  const std::unique_ptr<StepSchedule> schedule = make_schedule(scenario.step);

  auto is_faulty = [&](std::size_t i) {
    return std::find(scenario.faulty.begin(), scenario.faulty.end(), i) !=
           scenario.faulty.end();
  };

  std::vector<ScalarFunctionPtr> honest_fns;
  for (std::size_t i = 0; i < n; ++i)
    if (!is_faulty(i)) honest_fns.push_back(scenario.functions[i]);
  const ValidFamily family(honest_fns, scenario.f);

  SyncEngine<SbgPayload> engine;
  // The topology gates all deliveries, honest and Byzantine alike.
  const Topology& topo = scenario.topology;
  engine.set_delivery_filter([&topo](AgentId from, AgentId to, Round) {
    return topo.has_edge(from.value, to.value);
  });

  std::vector<std::unique_ptr<GraphSbgAgent>> agents;
  std::vector<std::unique_ptr<SbgAdversary>> adversaries;
  Rng rng(scenario.seed);
  for (std::size_t i = 0; i < n; ++i) {
    const AgentId id{static_cast<std::uint32_t>(i)};
    if (is_faulty(i)) {
      adversaries.push_back(
          make_adversary(scenario.attack, rng.substream("adversary", i)));
      engine.add_byzantine(id, adversaries.back().get());
    } else {
      agents.push_back(std::make_unique<GraphSbgAgent>(
          id, scenario.functions[i], scenario.initial_states[i], *schedule,
          scenario.topology.in_degree(i), scenario.f));
      engine.add_honest(id, agents.back().get());
    }
  }

  GraphRunMetrics metrics;
  metrics.optima = family.optima_set();
  auto record = [&] {
    double lo = agents.front()->state();
    double hi = lo;
    double dist = 0.0;
    for (const auto& a : agents) {
      lo = std::min(lo, a->state());
      hi = std::max(hi, a->state());
      dist = std::max(dist, family.distance_to_optima(a->state()));
    }
    metrics.disagreement.push(hi - lo);
    metrics.max_dist_to_y.push(dist);
  };
  record();
  for (std::size_t t = 1; t <= scenario.rounds; ++t) {
    engine.run_round(Round{static_cast<std::uint32_t>(t)});
    record();
  }
  for (const auto& a : agents) metrics.final_states.push_back(a->state());
  return metrics;
}

}  // namespace ftmao
