#pragma once

// Network robustness (LeBlanc, Zhang, Sundaram, Koutsoukos [14] — cited by
// the paper): a digraph is r-robust if for every pair of disjoint
// non-empty node subsets S1, S2, at least one of the two contains a node
// with >= r in-neighbours OUTSIDE its own subset.
//
// Relevance: trim-based iterative Byzantine consensus on incomplete
// networks succeeds iff the graph is (2f+1)-robust — this is the known
// theory behind the empirical transition bench E12 measures (a complete
// graph on n nodes is ceil(n/2)-robust, which with n > 3f exceeds 2f+1;
// the bare ring is only 1-robust).
//
// The check is exhaustive over subset pairs (Theta(3^n) assignments), so
// it is intended for the experiment sizes (n <= ~13).

#include <cstddef>

#include "graph/topology.hpp"

namespace ftmao {

/// True iff the graph is r-robust. Exhaustive; practical for n <= ~13.
bool is_r_robust(const Topology& topology, std::size_t r);

/// The largest r for which the graph is r-robust (0 for the empty graph's
/// degenerate cases). Monotone, so found by linear scan from 1.
std::size_t max_robustness(const Topology& topology);

/// The robustness the trim-consensus theory asks of a graph tolerating f
/// Byzantine agents: 2f + 1.
inline std::size_t required_robustness(std::size_t f) { return 2 * f + 1; }

}  // namespace ftmao
