#include "graph/topology.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/contracts.hpp"

namespace ftmao {

Topology::Topology(std::size_t n) : n_(n), adj_(n * n, false) {
  FTMAO_EXPECTS(n >= 1);
}

void Topology::add_edge(std::size_t from, std::size_t to) {
  FTMAO_EXPECTS(from < n_ && to < n_);
  if (from == to) return;
  adj_[from * n_ + to] = true;
}

bool Topology::has_edge(std::size_t from, std::size_t to) const {
  FTMAO_EXPECTS(from < n_ && to < n_);
  return adj_[from * n_ + to];
}

std::size_t Topology::in_degree(std::size_t agent) const {
  FTMAO_EXPECTS(agent < n_);
  std::size_t d = 0;
  for (std::size_t u = 0; u < n_; ++u)
    if (adj_[u * n_ + agent]) ++d;
  return d;
}

std::size_t Topology::out_degree(std::size_t agent) const {
  FTMAO_EXPECTS(agent < n_);
  std::size_t d = 0;
  for (std::size_t v = 0; v < n_; ++v)
    if (adj_[agent * n_ + v]) ++d;
  return d;
}

std::size_t Topology::min_in_degree() const {
  std::size_t best = n_;
  for (std::size_t v = 0; v < n_; ++v) best = std::min(best, in_degree(v));
  return best;
}

bool Topology::supports_trim(std::size_t f) const {
  return min_in_degree() >= 2 * f;
}

bool Topology::is_complete() const {
  for (std::size_t u = 0; u < n_; ++u)
    for (std::size_t v = 0; v < n_; ++v)
      if (u != v && !adj_[u * n_ + v]) return false;
  return true;
}

bool Topology::strongly_connected() const {
  auto reachable_from_0 = [this](bool reversed) {
    std::vector<bool> seen(n_, false);
    std::queue<std::size_t> queue;
    queue.push(0);
    seen[0] = true;
    std::size_t count = 1;
    while (!queue.empty()) {
      const std::size_t u = queue.front();
      queue.pop();
      for (std::size_t v = 0; v < n_; ++v) {
        const bool edge = reversed ? adj_[v * n_ + u] : adj_[u * n_ + v];
        if (edge && !seen[v]) {
          seen[v] = true;
          ++count;
          queue.push(v);
        }
      }
    }
    return count == n_;
  };
  return reachable_from_0(false) && reachable_from_0(true);
}

Topology make_complete(std::size_t n) {
  Topology t(n);
  for (std::size_t u = 0; u < n; ++u)
    for (std::size_t v = 0; v < n; ++v)
      if (u != v) t.add_edge(u, v);
  return t;
}

Topology make_ring_lattice(std::size_t n, std::size_t k) {
  FTMAO_EXPECTS(k >= 1);
  FTMAO_EXPECTS(2 * k < n);
  Topology t(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t step = 1; step <= k; ++step) {
      t.add_edge(u, (u + step) % n);
      t.add_edge(u, (u + n - step) % n);
    }
  }
  return t;
}

Topology make_random_out_regular(std::size_t n, std::size_t d, Rng& rng) {
  FTMAO_EXPECTS(d < n);
  Topology t(n);
  std::vector<std::size_t> others(n);
  for (std::size_t u = 0; u < n; ++u) {
    others.clear();
    for (std::size_t v = 0; v < n; ++v)
      if (v != u) others.push_back(v);
    // Partial Fisher-Yates: first d entries become u's out-neighbours.
    for (std::size_t i = 0; i < d; ++i) {
      const auto j = static_cast<std::size_t>(rng.uniform_int(
          static_cast<std::int64_t>(i), static_cast<std::int64_t>(others.size() - 1)));
      std::swap(others[i], others[j]);
      t.add_edge(u, others[i]);
    }
  }
  return t;
}

Topology make_barbell(std::size_t clique, std::size_t bridges) {
  FTMAO_EXPECTS(clique >= 2);
  FTMAO_EXPECTS(bridges >= 1 && bridges <= clique);
  const std::size_t n = 2 * clique;
  Topology t(n);
  for (std::size_t u = 0; u < clique; ++u)
    for (std::size_t v = 0; v < clique; ++v)
      if (u != v) {
        t.add_edge(u, v);
        t.add_edge(clique + u, clique + v);
      }
  for (std::size_t b = 0; b < bridges; ++b) {
    t.add_edge(b, clique + b);
    t.add_edge(clique + b, b);
  }
  return t;
}

}  // namespace ftmao
