#include "graph/robustness.hpp"

#include <vector>

#include "common/contracts.hpp"

namespace ftmao {

namespace {

// Does `subset` (bitmask) contain a node with >= r in-neighbours outside
// the subset?
bool has_reachable_node(const Topology& t, std::uint32_t subset, std::size_t r) {
  const std::size_t n = t.n();
  for (std::size_t v = 0; v < n; ++v) {
    if (((subset >> v) & 1u) == 0) continue;
    std::size_t outside = 0;
    for (std::size_t u = 0; u < n; ++u) {
      if (((subset >> u) & 1u) != 0) continue;
      if (t.has_edge(u, v) && ++outside >= r) break;
    }
    if (outside >= r) return true;
  }
  return false;
}

}  // namespace

bool is_r_robust(const Topology& topology, std::size_t r) {
  const std::size_t n = topology.n();
  FTMAO_EXPECTS(n >= 1 && n <= 20);  // 3^n enumeration guard
  if (r == 0) return true;

  // Enumerate unordered pairs of disjoint non-empty subsets via ternary
  // assignment {outside, S1, S2}; skip the symmetric duplicates by
  // requiring the lowest assigned node to be in S1.
  std::vector<std::uint32_t> power(n + 1, 1);
  for (std::size_t i = 1; i <= n; ++i) power[i] = power[i - 1] * 3;

  for (std::uint32_t code = 0; code < power[n]; ++code) {
    std::uint32_t s1 = 0, s2 = 0;
    std::uint32_t rest = code;
    bool first_assigned_is_s1 = true;
    bool seen_assigned = false;
    for (std::size_t v = 0; v < n; ++v) {
      const std::uint32_t digit = rest % 3;
      rest /= 3;
      if (digit == 1) {
        s1 |= 1u << v;
        if (!seen_assigned) seen_assigned = true;
      } else if (digit == 2) {
        if (!seen_assigned) {
          first_assigned_is_s1 = false;
          seen_assigned = true;
        }
        s2 |= 1u << v;
      }
    }
    if (s1 == 0 || s2 == 0 || !first_assigned_is_s1) continue;
    if (!has_reachable_node(topology, s1, r) &&
        !has_reachable_node(topology, s2, r))
      return false;
  }
  return true;
}

std::size_t max_robustness(const Topology& topology) {
  std::size_t r = 0;
  while (is_r_robust(topology, r + 1)) ++r;
  return r;
}

}  // namespace ftmao
