#pragma once

// Directed communication topologies for the incomplete-network extension
// (the paper's first open problem; explored in Su-Vaidya Part IV [25]).
//
// SBG's trim needs at least 2f+1 values per agent per round, so a
// necessary condition is in-degree >= 2f at every honest agent (own value
// adds one). That is NOT sufficient in general — which topologies preserve
// the paper's guarantees is exactly what bench E12 probes empirically.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace ftmao {

/// Directed graph on agents 0..n-1. edge(u, v) == true means u can send to
/// v. Self-loops are ignored (an agent always has its own value).
class Topology {
 public:
  explicit Topology(std::size_t n);

  std::size_t n() const { return n_; }

  void add_edge(std::size_t from, std::size_t to);
  bool has_edge(std::size_t from, std::size_t to) const;

  /// Number of distinct senders that can reach `agent`.
  std::size_t in_degree(std::size_t agent) const;
  std::size_t out_degree(std::size_t agent) const;
  std::size_t min_in_degree() const;

  /// Necessary condition for the f-trim to be well defined everywhere:
  /// every agent hears from >= 2f others.
  bool supports_trim(std::size_t f) const;

  /// True when every ordered pair is connected (ignoring self-loops).
  bool is_complete() const;

  /// Strong connectivity via two BFS passes (forward + reverse).
  bool strongly_connected() const;

 private:
  std::size_t n_;
  std::vector<bool> adj_;  // row-major [from][to]
};

/// All ordered pairs.
Topology make_complete(std::size_t n);

/// Bidirectional ring where each agent is also linked to the k nearest
/// neighbours on each side (k = 1 is the plain ring). In-degree = 2k.
Topology make_ring_lattice(std::size_t n, std::size_t k);

/// Random d-regular-ish digraph: each agent picks d distinct out-neighbours
/// uniformly (deterministic per rng). In-degrees concentrate near d.
Topology make_random_out_regular(std::size_t n, std::size_t d, Rng& rng);

/// Two complete cliques joined by `bridges` bidirectional links — the
/// classic hard case for Byzantine consensus connectivity.
Topology make_barbell(std::size_t clique, std::size_t bridges);

}  // namespace ftmao
