#pragma once

// The family C of "valid" global objectives (eq. 4) and the set
// Y = union of their argmins (eq. 5).
//
// For non-faulty cost functions {h_i}_{i in N} and fault bound f, C is all
// convex combinations whose weight vector is
// (1/(2(|N|-f)), |N|-f)-admissible. Lemma 1: Y is convex and closed — an
// interval here. Appendix A computes its endpoints through the envelope
//
//   r(x) = (1 - (m-f-1)/(2(m-f))) * g_(1)(x)
//        + (1/(2(m-f))) * sum_{j=2..m-f} g_(j)(x),
//
// with g_(1) >= g_(2) >= ... the sorted gradients at x and m = |N|: r(x)
// is the largest gradient any valid function attains at x, is continuous
// and non-decreasing (Proposition 2), and min Y is its leftmost zero. The
// mirrored envelope s(x) (smallest gradients) gives max Y as its rightmost
// zero.

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "common/interval.hpp"
#include "common/rng.hpp"
#include "func/combination.hpp"
#include "func/scalar_function.hpp"

namespace ftmao {

/// Checks Definition 1 on a weight vector over the non-faulty agents:
/// entries non-negative, summing to 1 (within tol), with at least gamma
/// entries >= beta - tol.
bool is_admissible_weights(std::span<const double> weights, double beta,
                           std::size_t gamma, double tol = 1e-9);

/// The family C for a fixed execution's non-faulty functions and f.
class ValidFamily {
 public:
  /// `functions` are the costs of the non-faulty agents (|N| = m of them);
  /// f is the system fault bound. Requires m > 2f (implied by n > 3f).
  ValidFamily(std::vector<ScalarFunctionPtr> functions, std::size_t f);

  std::size_t m() const { return functions_.size(); }
  std::size_t f() const { return f_; }

  /// beta = 1/(2(m-f)) — the guaranteed weight lower bound.
  double beta() const;

  /// gamma = m - f — the optimal number of represented agents (Thm 1).
  std::size_t gamma() const;

  /// r(x): the largest gradient over all valid functions at x.
  double max_envelope_gradient(double x) const;

  /// s(x): the smallest gradient over all valid functions at x.
  double min_envelope_gradient(double x) const;

  /// The valid function achieving the max (or min) gradient envelope at
  /// anchor x0 — eq. (23)'s q(x). Its weights put
  /// (m-f+1)/(2(m-f)) on the extreme-gradient agent at x0 and
  /// 1/(2(m-f)) on the next m-f-1.
  WeightedSum envelope_function_at(double x0, bool max_side) const;

  /// A valid function from an explicit admissible weight vector (asserts
  /// admissibility).
  WeightedSum member(std::span<const double> weights) const;

  /// Y = [leftmost zero of r, rightmost zero of s]. Cached.
  Interval optima_set() const;

  /// Dist(x, Y) (Definition 2).
  double distance_to_optima(double x) const;

  /// Is x an optimum of SOME valid objective? (Equivalent to
  /// distance_to_optima(x) == 0 up to tolerance; exposed for symmetry with
  /// the vector API and for direct membership queries.)
  bool contains_optimum(double x, double tolerance = 1e-9) const;

  /// An admissible weight vector whose combination is minimized at x, when
  /// one exists (LP witness over the gradients at x); nullopt outside Y.
  std::optional<std::vector<double>> optimum_witness(
      double x, double tolerance = 1e-7) const;

  /// Monte-Carlo inner approximation of Y: hull of argmins of `samples`
  /// random valid functions. Always a subset of Y (up to numeric
  /// tolerance) — used to cross-validate the envelope computation.
  Interval sampled_optima_hull(Rng& rng, std::size_t samples) const;

  /// A random admissible weight vector: a uniform-random support of size
  /// gamma gets beta each, the remaining mass is spread randomly.
  std::vector<double> random_admissible_weights(Rng& rng) const;

  const std::vector<ScalarFunctionPtr>& functions() const { return functions_; }

 private:
  double envelope(double x, bool max_side) const;

  std::vector<ScalarFunctionPtr> functions_;
  std::size_t f_;
  Interval optima_;
};

}  // namespace ftmao
