#pragma once

// The paper's explicit constants and finite-time bounds, computed exactly
// so runs can be checked against theory (not just against "small"):
//
//   * contraction factor rho = 1 - 1/(2(m-f))  (eq. (8));
//   * the disagreement recursion (10):
//       D[t] <= rho * D[t-1] + 2 L lambda[t-1] rho,
//     evaluated exactly as an upper-bound series;
//   * Proposition 1's l(t) = sum_{r<t} lambda[r] b^{t-r};
//   * the travel budget L * sum_{t<T} lambda[t] (how far any honest state
//     can move in T rounds).
//
// Tests assert measured disagreement <= bound for EVERY round of EVERY
// attack; benches overlay bound vs measurement.

#include <cstddef>

#include "common/series.hpp"
#include "core/step_size.hpp"

namespace ftmao {

/// rho = 1 - 1/(2(m-f)); requires m > f.
double contraction_factor(std::size_t honest, std::size_t f);

/// The exact sequence of (10)'s upper bound: bound[0] = initial_spread,
/// bound[t] = rho * bound[t-1] + 2 L lambda[t-1] rho. Returns rounds+1
/// values.
Series disagreement_upper_bound(double initial_spread, double gradient_bound,
                                const StepSchedule& schedule,
                                std::size_t honest, std::size_t f,
                                std::size_t rounds);

/// Proposition 1's l(t) for t = 0..rounds (rolling evaluation).
Series proposition1_series(double b, const StepSchedule& schedule,
                           std::size_t rounds);

/// L * sum_{t=0}^{rounds-1} lambda[t]: an upper bound on total state
/// movement (and hence on how far from the initial hull any honest agent
/// can be after `rounds` iterations).
double travel_budget(double gradient_bound, const StepSchedule& schedule,
                     std::size_t rounds);

/// Smallest t with disagreement_upper_bound(...) <= eps, or rounds+1 if
/// the bound does not reach eps within the horizon. A conservative
/// (guaranteed) rounds-to-epsilon.
std::size_t bound_rounds_to_epsilon(double eps, double initial_spread,
                                    double gradient_bound,
                                    const StepSchedule& schedule,
                                    std::size_t honest, std::size_t f,
                                    std::size_t horizon);

}  // namespace ftmao
