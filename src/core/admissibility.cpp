#include "core/admissibility.hpp"

#include <algorithm>
#include <limits>

#include "common/contracts.hpp"

namespace ftmao {

namespace {

lp::WitnessQuery make_query(std::span<const double> honest_values,
                            double trimmed_value, std::size_t f,
                            double tolerance) {
  const std::size_t m = honest_values.size();
  FTMAO_EXPECTS(m > f);
  lp::WitnessQuery q;
  q.values.assign(honest_values.begin(), honest_values.end());
  q.target = trimmed_value;
  q.gamma = m - f;
  q.beta = 1.0 / (2.0 * static_cast<double>(m - f));
  q.tolerance = tolerance;
  return q;
}

}  // namespace

TrimAuditResult audit_trim(std::span<const double> honest_values,
                           double trimmed_value, std::size_t f,
                           double tolerance) {
  const lp::WitnessQuery q =
      make_query(honest_values, trimmed_value, f, tolerance);
  const lp::WitnessResult w = lp::find_admissible_witness(q);

  TrimAuditResult result;
  result.witness_found = w.found;
  result.exact = w.exact;
  if (w.found) {
    result.weights = w.weights;
    result.support_size = w.support.size();
    double min_w = std::numeric_limits<double>::infinity();
    for (std::size_t i : w.support) min_w = std::min(min_w, w.weights[i]);
    result.min_support_weight = w.support.empty() ? 0.0 : min_w;
  }
  return result;
}

double best_achievable_beta(std::span<const double> honest_values,
                            double trimmed_value, std::size_t f,
                            double tolerance) {
  const lp::WitnessQuery q =
      make_query(honest_values, trimmed_value, f, tolerance);
  return lp::max_guaranteed_beta(q);
}

}  // namespace ftmao
