#pragma once

// Algorithm SBG — synchronous Byzantine gradient method (Section 4).
//
// Each iteration t >= 1, agent j:
//   Step 1: sends (x_j[t-1], h'_j(x_j[t-1])) to all agents.
//   Step 2: collects the tuples received (default value for missing ones),
//           forming multisets D^x (states, incl. own) and D^g (gradients,
//           incl. own).
//   Step 3: x~ = Trim(D^x), g~ = Trim(D^g),
//           x_j[t] = x~ - lambda[t-1] * g~.
//
// The constrained variant (Section 6) projects the update onto the
// constraint interval X and records the projection error e[t-1] (eq. 16).

#include <optional>
#include <vector>

#include "common/interval.hpp"
#include "common/types.hpp"
#include "core/payload.hpp"
#include "core/step_size.hpp"
#include "func/scalar_function.hpp"
#include "net/sync.hpp"

namespace ftmao {

/// Static parameters of an SBG run, shared by all agents.
struct SbgConfig {
  std::size_t n = 0;  ///< total number of agents (n > 3f)
  std::size_t f = 0;  ///< max Byzantine agents tolerated
  SbgPayload default_payload{};        ///< substituted for missing tuples
  std::optional<Interval> constraint;  ///< Section 6 projection set X

  void validate() const;
};

/// A correct agent running SBG. Pure state machine: the engine (net/sync)
/// or any test can drive it via broadcast()/step().
class SbgAgent final : public SyncNode<SbgPayload> {
 public:
  SbgAgent(AgentId id, ScalarFunctionPtr cost, double initial_state,
           const StepSchedule& schedule, const SbgConfig& config);

  SbgPayload broadcast(Round t) override;
  void step(Round t, std::span<const Received<SbgPayload>> inbox) override;

  AgentId id() const { return id_; }
  double state() const { return state_; }
  const ScalarFunction& cost() const { return *cost_; }

  /// Diagnostics from the most recent step (for witness audits and the
  /// constrained variant's error series).
  struct StepDiagnostics {
    double trimmed_state = 0.0;      ///< x~_j[t-1]
    double trimmed_gradient = 0.0;   ///< g~_j[t-1]
    double projection_error = 0.0;   ///< e_j[t-1]; 0 when unconstrained
    std::size_t missing_tuples = 0;  ///< defaults substituted this step
  };
  const StepDiagnostics& last_step() const { return last_step_; }

 private:
  AgentId id_;
  ScalarFunctionPtr cost_;
  double state_;
  const StepSchedule* schedule_;  // non-owning; outlives the agent
  SbgConfig config_;
  StepDiagnostics last_step_{};
  // Step-scoped scratch reused across rounds so a run of T rounds costs
  // O(1) allocations per agent instead of O(T).
  std::vector<double> states_scratch_;
  std::vector<double> gradients_scratch_;
  std::vector<double> trim_scratch_;
};

}  // namespace ftmao
