#include "core/crash_sbg.hpp"

#include "common/contracts.hpp"
#include "trim/trim.hpp"

namespace ftmao {

CrashSbgAgent::CrashSbgAgent(AgentId id, ScalarFunctionPtr cost,
                             double initial_state, const StepSchedule& schedule)
    : id_(id), cost_(std::move(cost)), state_(initial_state), schedule_(&schedule) {
  FTMAO_EXPECTS(cost_ != nullptr);
}

SbgPayload CrashSbgAgent::broadcast(Round t) {
  FTMAO_EXPECTS(t.value >= 1);
  return SbgPayload{state_, cost_->derivative(state_)};
}

void CrashSbgAgent::step(Round t, std::span<const Received<SbgPayload>> inbox) {
  FTMAO_EXPECTS(t.value >= 1);
  std::vector<double> states;
  std::vector<double> gradients;
  states.reserve(inbox.size() + 1);
  gradients.reserve(inbox.size() + 1);
  states.push_back(state_);
  gradients.push_back(cost_->derivative(state_));
  for (const auto& msg : inbox) {
    states.push_back(msg.payload.state);
    gradients.push_back(msg.payload.gradient);
  }
  const double lambda = schedule_->at(t.value - 1);
  state_ = mean(states) - lambda * mean(gradients);
}

}  // namespace ftmao
