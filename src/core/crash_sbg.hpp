#pragma once

// Crash-fault variant (Section 7). With crash (not Byzantine) failures the
// algorithm performs *no trimming*: each agent averages the state and
// gradient tuples it actually received this round (its own included) and
// takes the gradient step. The paper (and its Part III report) shows the
// output optimizes
//
//   c * ( sum_{i in N} h_i(x) + sum_{i in F} alpha_i h_i(x) ),  (17)
//
// with equal weights on all never-crashed agents and partial weights
// alpha_i in [0,1] for agents that crashed mid-execution.
//
// Crash behaviour itself (an agent stops sending, possibly mid-round to a
// subset of recipients) is injected by the crash runner in sim/.

#include <span>
#include <vector>

#include "common/types.hpp"
#include "core/payload.hpp"
#include "core/step_size.hpp"
#include "func/scalar_function.hpp"
#include "net/sync.hpp"

namespace ftmao {

/// A correct agent in the crash-fault model. Unlike SbgAgent it never
/// substitutes defaults: averaging over what arrived is exactly what gives
/// crashed agents their partial weight in (17).
class CrashSbgAgent final : public SyncNode<SbgPayload> {
 public:
  CrashSbgAgent(AgentId id, ScalarFunctionPtr cost, double initial_state,
                const StepSchedule& schedule);

  SbgPayload broadcast(Round t) override;
  void step(Round t, std::span<const Received<SbgPayload>> inbox) override;

  AgentId id() const { return id_; }
  double state() const { return state_; }

 private:
  AgentId id_;
  ScalarFunctionPtr cost_;
  double state_;
  const StepSchedule* schedule_;
};

}  // namespace ftmao
