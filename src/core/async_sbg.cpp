#include "core/async_sbg.hpp"

#include "common/contracts.hpp"
#include "trim/trim.hpp"

namespace ftmao {

void AsyncSbgConfig::validate() const {
  FTMAO_EXPECTS(n > 5 * f);
  FTMAO_EXPECTS(quorum() >= 2 * f + 1);  // Trim precondition
}

AsyncSbgAgent::AsyncSbgAgent(AgentId id, ScalarFunctionPtr cost,
                             double initial_state, const StepSchedule& schedule,
                             const AsyncSbgConfig& config)
    : id_(id),
      cost_(std::move(cost)),
      state_(initial_state),
      schedule_(&schedule),
      config_(config) {
  FTMAO_EXPECTS(cost_ != nullptr);
  config_.validate();
  history_.push_back(state_);
}

SbgPayload AsyncSbgAgent::initial_broadcast() {
  return SbgPayload{state_, cost_->derivative(state_)};
}

std::optional<SbgPayload> AsyncSbgAgent::on_message(
    const TaggedMessage<SbgPayload>& msg) {
  if (msg.round < round_) return std::nullopt;  // stale round, ignore
  auto& round_buffer = buffer_[msg.round.value];
  round_buffer.emplace(msg.from, msg.payload);  // first tuple per sender wins
  return maybe_advance();
}

std::optional<SbgPayload> AsyncSbgAgent::maybe_advance() {
  const auto it = buffer_.find(round_.value);
  if (it == buffer_.end() || it->second.size() < config_.quorum())
    return std::nullopt;

  std::vector<double>& states = states_scratch_;
  std::vector<double>& gradients = gradients_scratch_;
  states.clear();
  gradients.clear();
  states.reserve(it->second.size());
  gradients.reserve(it->second.size());
  for (const auto& [from, payload] : it->second) {
    states.push_back(payload.state);
    gradients.push_back(payload.gradient);
  }

  const double trimmed_state = trim_value(states, config_.f, trim_scratch_);
  const double trimmed_gradient =
      trim_value(gradients, config_.f, trim_scratch_);
  const double lambda = schedule_->at(round_.value - 1);
  state_ = trimmed_state - lambda * trimmed_gradient;
  history_.push_back(state_);

  buffer_.erase(it);
  round_ = round_.next();
  return SbgPayload{state_, cost_->derivative(state_)};
}

}  // namespace ftmao
