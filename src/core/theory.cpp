#include "core/theory.hpp"

#include "common/contracts.hpp"

namespace ftmao {

double contraction_factor(std::size_t honest, std::size_t f) {
  FTMAO_EXPECTS(honest > f);
  return 1.0 - 1.0 / (2.0 * static_cast<double>(honest - f));
}

Series disagreement_upper_bound(double initial_spread, double gradient_bound,
                                const StepSchedule& schedule,
                                std::size_t honest, std::size_t f,
                                std::size_t rounds) {
  FTMAO_EXPECTS(initial_spread >= 0.0);
  FTMAO_EXPECTS(gradient_bound >= 0.0);
  const double rho = contraction_factor(honest, f);
  Series bound;
  double d = initial_spread;
  bound.push(d);
  for (std::size_t t = 1; t <= rounds; ++t) {
    d = rho * d + 2.0 * gradient_bound * schedule.at(t - 1) * rho;
    bound.push(d);
  }
  return bound;
}

Series proposition1_series(double b, const StepSchedule& schedule,
                           std::size_t rounds) {
  FTMAO_EXPECTS(b >= 0.0 && b < 1.0);
  Series l;
  double acc = 0.0;
  l.push(0.0);
  for (std::size_t t = 0; t < rounds; ++t) {
    acc = b * (acc + schedule.at(t));
    l.push(acc);
  }
  return l;
}

double travel_budget(double gradient_bound, const StepSchedule& schedule,
                     std::size_t rounds) {
  FTMAO_EXPECTS(gradient_bound >= 0.0);
  double sum = 0.0;
  for (std::size_t t = 0; t < rounds; ++t) sum += schedule.at(t);
  return gradient_bound * sum;
}

std::size_t bound_rounds_to_epsilon(double eps, double initial_spread,
                                    double gradient_bound,
                                    const StepSchedule& schedule,
                                    std::size_t honest, std::size_t f,
                                    std::size_t horizon) {
  FTMAO_EXPECTS(eps > 0.0);
  const double rho = contraction_factor(honest, f);
  double d = initial_spread;
  if (d <= eps) return 0;
  for (std::size_t t = 1; t <= horizon; ++t) {
    d = rho * d + 2.0 * gradient_bound * schedule.at(t - 1) * rho;
    if (d <= eps) return t;
  }
  return horizon + 1;
}

}  // namespace ftmao
