#pragma once

// Asynchronous SBG variant (Section 7, second approach): requires
// n > 5f and combines SBG's trimmed gradient step with the asynchronous
// iterative consensus pattern of Dolev et al. [8]: in asynchronous round
// t an agent waits for round-t tuples from n - f distinct agents
// (counting itself), trims f from each multiset, and updates with
// lambda[t-1]. Because up to f of the n - f collected tuples may be
// Byzantine and another f honest tuples may be missing, the resilience
// bound tightens from n > 3f to n > 5f.

#include <map>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "core/payload.hpp"
#include "core/step_size.hpp"
#include "func/scalar_function.hpp"
#include "net/async.hpp"

namespace ftmao {

struct AsyncSbgConfig {
  std::size_t n = 0;  ///< total agents; must satisfy n > 5f
  std::size_t f = 0;

  std::size_t quorum() const { return n - f; }
  void validate() const;
};

/// Honest asynchronous agent. Buffers tagged tuples per round; first tuple
/// per (sender, round) wins (later duplicates from a Byzantine sender are
/// ignored).
class AsyncSbgAgent final : public AsyncNode<SbgPayload> {
 public:
  AsyncSbgAgent(AgentId id, ScalarFunctionPtr cost, double initial_state,
                const StepSchedule& schedule, const AsyncSbgConfig& config);

  SbgPayload initial_broadcast() override;
  std::optional<SbgPayload> on_message(const TaggedMessage<SbgPayload>& msg) override;
  Round current_round() const override { return round_; }

  AgentId id() const { return id_; }
  double state() const { return state_; }

  /// history()[t] = state after completing t asynchronous rounds
  /// (history()[0] is the initial state). Lets runners rebuild per-round
  /// series after the event-driven execution finishes.
  const std::vector<double>& history() const { return history_; }

 private:
  std::optional<SbgPayload> maybe_advance();

  AgentId id_;
  ScalarFunctionPtr cost_;
  double state_;
  const StepSchedule* schedule_;
  AsyncSbgConfig config_;
  Round round_{1};  ///< round currently being collected
  std::vector<double> history_;
  // round -> (sender -> first payload received with that tag)
  std::map<std::uint32_t, std::map<AgentId, SbgPayload>> buffer_;
  // Advance-scoped scratch reused across rounds (no per-round allocation).
  std::vector<double> states_scratch_;
  std::vector<double> gradients_scratch_;
  std::vector<double> trim_scratch_;
};

}  // namespace ftmao
