#include "core/step_size.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace ftmao {

HarmonicStep::HarmonicStep(double scale) : scale_(scale) {
  FTMAO_EXPECTS(scale > 0.0);
}

double HarmonicStep::at(std::size_t k) const {
  if (k == 0) return scale_;
  return scale_ / static_cast<double>(k);
}

PowerStep::PowerStep(double scale, double exponent)
    : scale_(scale), exponent_(exponent) {
  FTMAO_EXPECTS(scale > 0.0);
  FTMAO_EXPECTS(exponent > 0.0);
}

double PowerStep::at(std::size_t k) const {
  return scale_ / std::pow(static_cast<double>(k + 1), exponent_);
}

ConstantStep::ConstantStep(double value) : value_(value) {
  FTMAO_EXPECTS(value > 0.0);
}

double ConstantStep::at(std::size_t) const { return value_; }

ScheduleCheck check_schedule(const StepSchedule& schedule, std::size_t horizon) {
  FTMAO_EXPECTS(horizon >= 100);
  ScheduleCheck check;
  check.non_increasing = true;

  double prev = schedule.at(0);
  double sum_first_half = 0.0, sum_second_half = 0.0;
  double sq_first_half = 0.0, sq_second_half = 0.0;
  for (std::size_t k = 0; k < horizon; ++k) {
    const double v = schedule.at(k);
    if (v > prev + 1e-15) check.non_increasing = false;
    prev = v;
    if (k < horizon / 2) {
      sum_first_half += v;
      sq_first_half += v * v;
    } else {
      sum_second_half += v;
      sq_second_half += v * v;
    }
  }
  // Divergence proxy: the second half still contributes a non-negligible
  // fraction of the first half's mass (true for 1/t: log growth halves
  // slowly; false for summable schedules like 1/t^2).
  check.sum_diverges = sum_second_half > 0.05 * sum_first_half;
  // Square-summability proxy: squares become negligible in the tail.
  check.sum_squares_converges = sq_second_half < 0.05 * sq_first_half;
  return check;
}

}  // namespace ftmao
