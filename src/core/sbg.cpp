#include "core/sbg.hpp"

#include "common/contracts.hpp"
#include "trim/trim.hpp"

namespace ftmao {

void SbgConfig::validate() const {
  FTMAO_EXPECTS(n > 3 * f);
  FTMAO_EXPECTS(n >= 1);
}

SbgAgent::SbgAgent(AgentId id, ScalarFunctionPtr cost, double initial_state,
                   const StepSchedule& schedule, const SbgConfig& config)
    : id_(id),
      cost_(std::move(cost)),
      state_(initial_state),
      schedule_(&schedule),
      config_(config) {
  FTMAO_EXPECTS(cost_ != nullptr);
  config_.validate();
  if (config_.constraint) state_ = config_.constraint->project(state_);
}

SbgPayload SbgAgent::broadcast(Round t) {
  FTMAO_EXPECTS(t.value >= 1);
  return SbgPayload{state_, cost_->derivative(state_)};
}

void SbgAgent::step(Round t, std::span<const Received<SbgPayload>> inbox) {
  FTMAO_EXPECTS(t.value >= 1);
  FTMAO_EXPECTS(inbox.size() <= config_.n - 1);

  // Step 2: D^x and D^g include our own tuple plus one entry per other
  // agent, substituting the default for agents we heard nothing from.
  std::vector<double>& states = states_scratch_;
  std::vector<double>& gradients = gradients_scratch_;
  states.clear();
  gradients.clear();
  states.reserve(config_.n);
  gradients.reserve(config_.n);
  states.push_back(state_);
  gradients.push_back(cost_->derivative(state_));
  for (const auto& msg : inbox) {
    FTMAO_EXPECTS(msg.from != id_);
    states.push_back(msg.payload.state);
    gradients.push_back(msg.payload.gradient);
  }
  const std::size_t missing = (config_.n - 1) - inbox.size();
  for (std::size_t i = 0; i < missing; ++i) {
    states.push_back(config_.default_payload.state);
    gradients.push_back(config_.default_payload.gradient);
  }

  // Step 3: independent trims, then the gradient step with lambda[t-1].
  const double trimmed_state = trim_value(states, config_.f, trim_scratch_);
  const double trimmed_gradient =
      trim_value(gradients, config_.f, trim_scratch_);
  const double lambda = schedule_->at(t.value - 1);
  const double unprojected = trimmed_state - lambda * trimmed_gradient;

  double next = unprojected;
  double projection_error = 0.0;
  if (config_.constraint) {
    next = config_.constraint->project(unprojected);
    projection_error = next - unprojected;  // e_j[t-1] in eq. (16)
  }

  last_step_ = StepDiagnostics{trimmed_state, trimmed_gradient,
                               projection_error, missing};
  state_ = next;
}

}  // namespace ftmao
