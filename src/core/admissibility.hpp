#pragma once

// Runtime audits of Lemma 2 / Corollary 1: after each Trim, the effective
// value must equal a convex combination of the *honest* inputs with a
// (1/(2(m-f)), m-f)-admissible weight vector. audit_trim searches for that
// witness with the LP machinery; the experiment harness runs it every
// iteration (E3) and the property tests assert it never fails.

#include <cstddef>
#include <span>
#include <vector>

#include "lp/witness.hpp"

namespace ftmao {

struct TrimAuditResult {
  bool witness_found = false;
  bool exact = true;          ///< exhaustive subset search completed
  double min_support_weight = 0.0;  ///< smallest weight on the support
  std::size_t support_size = 0;     ///< #weights >= beta
  std::vector<double> weights;      ///< the witness itself (over honest values)
};

/// Verifies that `trimmed_value` lies in the admissible-combination hull of
/// `honest_values` (the values held by the m non-faulty agents), with
/// beta = 1/(2(m-f)) and gamma = m-f.
TrimAuditResult audit_trim(std::span<const double> honest_values,
                           double trimmed_value, std::size_t f,
                           double tolerance = 1e-7);

/// The best beta achievable for gamma = m-f on this instance — compare
/// with the guaranteed 1/(2(m-f)) (it must be >= that when the audit
/// passes) and with Theorem 1's ceiling. Exhaustive; small m only.
double best_achievable_beta(std::span<const double> honest_values,
                            double trimmed_value, std::size_t f,
                            double tolerance = 1e-7);

}  // namespace ftmao
