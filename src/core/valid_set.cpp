#include "core/valid_set.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/contracts.hpp"
#include "lp/witness.hpp"
#include "opt/bisection.hpp"

namespace ftmao {

bool is_admissible_weights(std::span<const double> weights, double beta,
                           std::size_t gamma, double tol) {
  double sum = 0.0;
  std::size_t bounded = 0;
  for (double w : weights) {
    if (w < -tol) return false;
    sum += w;
    if (w >= beta - tol) ++bounded;
  }
  return std::abs(sum - 1.0) <= tol && bounded >= gamma;
}

namespace {

Interval argmin_hull(const std::vector<ScalarFunctionPtr>& functions) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& fn : functions) {
    lo = std::min(lo, fn->argmin().lo());
    hi = std::max(hi, fn->argmin().hi());
  }
  return Interval(lo, hi);
}

}  // namespace

ValidFamily::ValidFamily(std::vector<ScalarFunctionPtr> functions, std::size_t f)
    : functions_(std::move(functions)), f_(f), optima_(0.0) {
  FTMAO_EXPECTS(!functions_.empty());
  for (const auto& fn : functions_) FTMAO_EXPECTS(fn != nullptr);
  FTMAO_EXPECTS(functions_.size() > 2 * f_);  // m > 2f (from n > 3f)

  // Y = [leftmost zero of r, rightmost zero of s] (Appendix A). Both
  // envelopes are continuous and non-decreasing, so both endpoints are
  // monotone-predicate thresholds. Any valid function's argmin — hence Y —
  // lies in the hull of the individual argmins, giving the seed bracket.
  const Interval hull = argmin_hull(functions_);
  const MonotonePredicate r_nonneg = [this](double x) {
    return max_envelope_gradient(x) >= 0.0;
  };
  const MonotonePredicate s_positive = [this](double x) {
    return min_envelope_gradient(x) > 0.0;
  };
  const Bracket rb = expand_bracket(r_nonneg, hull.lo() - 1.0, hull.hi() + 1.0);
  const double y_lo = bisect_threshold(r_nonneg, rb.lo, rb.hi);
  const Bracket sb = expand_bracket(s_positive, hull.lo() - 1.0, hull.hi() + 1.0);
  const double y_hi = bisect_threshold(s_positive, sb.lo, sb.hi);
  optima_ = y_hi >= y_lo ? Interval(y_lo, y_hi)
                         : Interval((y_lo + y_hi) / 2.0);  // numeric noise
}

double ValidFamily::beta() const {
  return 1.0 / (2.0 * static_cast<double>(gamma()));
}

std::size_t ValidFamily::gamma() const { return functions_.size() - f_; }

double ValidFamily::envelope(double x, bool max_side) const {
  std::vector<double> grads;
  grads.reserve(functions_.size());
  for (const auto& fn : functions_) grads.push_back(fn->derivative(x));
  if (max_side) {
    std::sort(grads.begin(), grads.end(), std::greater<>());
  } else {
    std::sort(grads.begin(), grads.end());
  }
  const std::size_t k = gamma();
  const double b = beta();
  // Weight (m-f+1)/(2(m-f)) on the extreme gradient, beta on the next k-1.
  double g = (1.0 - static_cast<double>(k - 1) * b) * grads[0];
  for (std::size_t j = 1; j < k; ++j) g += b * grads[j];
  return g;
}

double ValidFamily::max_envelope_gradient(double x) const {
  return envelope(x, /*max_side=*/true);
}

double ValidFamily::min_envelope_gradient(double x) const {
  return envelope(x, /*max_side=*/false);
}

WeightedSum ValidFamily::envelope_function_at(double x0, bool max_side) const {
  std::vector<std::size_t> order(functions_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double ga = functions_[a]->derivative(x0);
    const double gb = functions_[b]->derivative(x0);
    return max_side ? ga > gb : ga < gb;
  });
  const std::size_t k = gamma();
  const double b = beta();
  std::vector<double> weights(functions_.size(), 0.0);
  weights[order[0]] = 1.0 - static_cast<double>(k - 1) * b;
  for (std::size_t j = 1; j < k; ++j) weights[order[j]] = b;
  return member(weights);
}

WeightedSum ValidFamily::member(std::span<const double> weights) const {
  FTMAO_EXPECTS(weights.size() == functions_.size());
  FTMAO_EXPECTS(is_admissible_weights(weights, beta(), gamma()));
  std::vector<WeightedTerm> terms;
  terms.reserve(functions_.size());
  for (std::size_t i = 0; i < functions_.size(); ++i)
    terms.push_back({weights[i], functions_[i]});
  return WeightedSum(std::move(terms));
}

Interval ValidFamily::optima_set() const { return optima_; }

double ValidFamily::distance_to_optima(double x) const {
  return optima_.distance_to(x);
}

bool ValidFamily::contains_optimum(double x, double tolerance) const {
  return optima_.distance_to(x) <= tolerance;
}

std::optional<std::vector<double>> ValidFamily::optimum_witness(
    double x, double tolerance) const {
  // x minimizes sum alpha_i h_i iff sum alpha_i h_i'(x) = 0 with alpha
  // admissible — the same LP feasibility as the trim audits, with target 0
  // over the gradient values at x.
  lp::WitnessQuery query;
  query.values.reserve(functions_.size());
  for (const auto& fn : functions_) query.values.push_back(fn->derivative(x));
  query.target = 0.0;
  query.beta = beta();
  query.gamma = gamma();
  query.tolerance = tolerance;
  const lp::WitnessResult witness = lp::find_admissible_witness(query);
  if (!witness.found) return std::nullopt;
  return witness.weights;
}

Interval ValidFamily::sampled_optima_hull(Rng& rng, std::size_t samples) const {
  FTMAO_EXPECTS(samples >= 1);
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::size_t s = 0; s < samples; ++s) {
    const std::vector<double> w = random_admissible_weights(rng);
    const Interval am = member(w).argmin();
    lo = std::min(lo, am.lo());
    hi = std::max(hi, am.hi());
  }
  return Interval(lo, hi);
}

std::vector<double> ValidFamily::random_admissible_weights(Rng& rng) const {
  const std::size_t m = functions_.size();
  const std::size_t k = gamma();
  const double b = beta();

  // Uniform-random support of size gamma via partial Fisher-Yates.
  std::vector<std::size_t> perm(m);
  std::iota(perm.begin(), perm.end(), 0);
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(i),
                        static_cast<std::int64_t>(m - 1)));
    std::swap(perm[i], perm[j]);
  }

  std::vector<double> weights(m, 0.0);
  for (std::size_t i = 0; i < k; ++i) weights[perm[i]] = b;

  // Spread the remaining mass (1 - k*b = 1/2) over the support with
  // random proportions; keeping it on the support preserves admissibility.
  double remaining = 1.0 - static_cast<double>(k) * b;
  std::vector<double> cuts(k);
  double total = 0.0;
  for (auto& c : cuts) {
    c = rng.uniform(0.0, 1.0);
    total += c;
  }
  if (total > 0.0) {
    for (std::size_t i = 0; i < k; ++i)
      weights[perm[i]] += remaining * cuts[i] / total;
  } else {
    weights[perm[0]] += remaining;
  }
  return weights;
}

}  // namespace ftmao
