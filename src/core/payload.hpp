#pragma once

// The SBG wire format: Step 1 of the algorithm sends the 2-tuple
// (x_j[t-1], h'_j(x_j[t-1])) — current estimate and local gradient at it.

namespace ftmao {

struct SbgPayload {
  double state = 0.0;     ///< x_j[t-1]
  double gradient = 0.0;  ///< h'_j(x_j[t-1])
};

}  // namespace ftmao
