#pragma once

// Diminishing step sizes lambda[t] (Section 4). The algorithm requires:
//   lambda[t] <= lambda[t-1],  sum lambda[t] = infinity,
//   sum lambda[t]^2 < infinity.
// The harmonic schedule lambda[0]=c, lambda[t]=c/t additionally yields the
// O(1/t) consensus rate of Lemma 3 / Proposition 1.

#include <cstddef>
#include <memory>

namespace ftmao {

/// lambda[k] for k >= 0 (the update at iteration t uses lambda[t-1]).
class StepSchedule {
 public:
  virtual ~StepSchedule() = default;
  virtual double at(std::size_t k) const = 0;
};

/// lambda[0] = scale, lambda[k] = scale / k. Satisfies all conditions.
class HarmonicStep final : public StepSchedule {
 public:
  explicit HarmonicStep(double scale = 1.0);
  double at(std::size_t k) const override;

 private:
  double scale_;
};

/// lambda[k] = scale / (k + 1)^p. Valid for p in (1/2, 1]; p <= 1/2
/// violates square-summability and p > 1 violates divergence — both are
/// exercised in ablations.
class PowerStep final : public StepSchedule {
 public:
  PowerStep(double scale, double exponent);
  double at(std::size_t k) const override;

 private:
  double scale_;
  double exponent_;
};

/// lambda[k] = c. Violates square-summability; ablation only (consensus
/// stalls at a noise floor proportional to c).
class ConstantStep final : public StepSchedule {
 public:
  explicit ConstantStep(double value);
  double at(std::size_t k) const override;

 private:
  double value_;
};

/// Numeric sanity check of the three schedule conditions over a horizon:
/// monotone non-increasing; partial sums still growing at the horizon
/// (divergence proxy); partial sums of squares flattening (summability
/// proxy). Heuristic by nature — used by tests and validators.
struct ScheduleCheck {
  bool non_increasing = false;
  bool sum_diverges = false;
  bool sum_squares_converges = false;

  bool all_ok() const {
    return non_increasing && sum_diverges && sum_squares_converges;
  }
};

ScheduleCheck check_schedule(const StepSchedule& schedule,
                             std::size_t horizon = 100000);

}  // namespace ftmao
